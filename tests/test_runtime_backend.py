"""Unit tests for the runtime-backend seam (repro.runtime).

Covers backend construction/coercion, the kernel dispatch fallback,
AioFuture's sim-future semantics, the duplex-stream transport, and the
engine end-to-end on the asyncio substrate (single- and multi-silo).
"""

import asyncio

import pytest

from repro.core.config import SnapperConfig
from repro.core.system import SnapperSystem
from repro.actors.runtime import SiloConfig
from repro.errors import CancelledError, SimulationError
from repro.runtime import BACKENDS, as_backend, create_backend
from repro.runtime import kernel
from repro.runtime.aio import AioFuture
from repro.runtime.aio_backend import AsyncioBackend
from repro.runtime.sim_backend import SimBackend
from repro.sim.loop import SimLoop
from repro.workloads.smallbank import SnapperAccountActor


class TestBackendConstruction:
    def test_registry(self):
        assert BACKENDS == ("sim", "asyncio")
        with pytest.raises(ValueError):
            create_backend("zookeeper")

    def test_config_validates_backend(self):
        with pytest.raises(ValueError):
            SnapperConfig(runtime_backend="zookeeper")

    def test_as_backend_coercions(self):
        loop = SimLoop(seed=4)
        wrapped = as_backend(loop)
        assert isinstance(wrapped, SimBackend)
        assert wrapped.loop is loop
        # a backend passes through unchanged
        assert as_backend(wrapped) is wrapped
        # None makes a fresh deterministic backend
        fresh = as_backend(None, seed=9)
        assert isinstance(fresh, SimBackend)
        assert fresh.deterministic

    def test_sim_backend_delegates_clock(self):
        backend = SimBackend(SimLoop(seed=0))
        async def nap():
            await backend.sleep(1.5)
            return backend.now
        assert backend.run_until_complete(nap()) == pytest.approx(1.5)

    def test_system_loop_alias_is_simloop(self):
        """Legacy surface: `system.loop` stays the raw SimLoop."""
        system = SnapperSystem(seed=1)
        assert isinstance(system.loop, SimLoop)
        assert system.backend.loop is system.loop


class TestKernelDispatch:
    def test_fallback_uses_sim_loop(self):
        loop = SimLoop(seed=0)
        seen = []
        async def main():
            assert kernel.current_backend() is None
            seen.append(kernel.now())
            await kernel.sleep(0.25)
            seen.append(kernel.now())
        loop.run_until_complete(main())
        assert seen == [0.0, 0.25]

    def test_future_factory_matches_substrate(self):
        from repro.sim.future import Future as SimFuture
        assert isinstance(kernel.create_future("x"), SimFuture)
        backend = AsyncioBackend(seed=0, transport=False)
        kernel.install(backend)
        try:
            assert isinstance(kernel.create_future("x"), AioFuture)
        finally:
            kernel.uninstall(backend)
            backend.close()

    def test_install_is_scoped_to_run(self):
        backend = AsyncioBackend(seed=0, transport=False)
        async def probe():
            return kernel.current_backend()
        assert backend.run_until_complete(probe()) is backend
        assert kernel.current_backend() is None
        backend.close()


class TestAioFuture:
    def setup_method(self):
        self.backend = AsyncioBackend(seed=0, transport=False)

    def teardown_method(self):
        self.backend.close()

    def test_inline_callbacks_and_try_set(self):
        fut = self.backend.create_future("f")
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        assert fut.try_set_result(7)
        assert seen == [7]          # callback ran inline, like sim
        assert not fut.try_set_result(8)
        fut.add_done_callback(lambda f: seen.append("late"))
        assert seen == [7, "late"]  # late subscriber fires immediately

    def test_cancel_raises_repro_cancelled(self):
        fut = self.backend.create_future("f")
        assert fut.cancel("nope")
        with pytest.raises(CancelledError):
            fut.result()

    def test_await_bridges_exception(self):
        async def main():
            fut = self.backend.create_future("f")
            self.backend.call_later(0.0, fut.try_set_exception,
                                    ValueError("boom"))
            with pytest.raises(ValueError):
                await fut
        self.backend.run_until_complete(main())

    def test_result_before_done_raises(self):
        fut = self.backend.create_future("f")
        with pytest.raises(SimulationError):
            fut.result()


class TestAsyncioPrimitives:
    def test_gather_and_wait_for(self):
        backend = AsyncioBackend(seed=0, transport=False)
        async def slow(value, delay):
            await backend.sleep(delay)
            return value
        async def main():
            results = await backend.gather(slow("a", 0.02), slow("b", 0.01))
            assert results == ["a", "b"]       # declaration order, like sim
            with pytest.raises(TimeoutError):
                await backend.wait_for(slow("c", 5.0), timeout=0.02)
        backend.run_until_complete(main())
        backend.close()

    def test_run_requires_deadline(self):
        backend = AsyncioBackend(seed=0, transport=False)
        with pytest.raises(SimulationError):
            backend.run()
        backend.close()

    def test_run_until_complete_deadline(self):
        backend = AsyncioBackend(seed=0, transport=False)
        async def forever():
            await backend.sleep(60.0)
        with pytest.raises(SimulationError):
            backend.run_until_complete(forever(), until=0.05)
        backend.close()


class TestTransport:
    def test_cross_silo_roundtrip_carries_silo_tag(self):
        backend = AsyncioBackend(seed=1)
        hits = []
        async def main():
            backend.deliver(
                0.0, lambda: hits.append(backend.current_silo()),
                silo=2, cross_silo=True,
            )
            backend.deliver(0.0, lambda: hits.append("local"), silo=0)
            await asyncio.sleep(0.2)
        backend.run_until_complete(main())
        assert sorted(map(str, hits)) == ["2", "local"]
        assert backend.transport_messages == 1
        assert backend.transport_bytes == 8
        backend.close()

    def test_multisilo_engine_end_to_end(self):
        """8 PACTs across 3 silos over real sockets: money conserved."""
        config = SnapperConfig(runtime_backend="asyncio")
        system = SnapperSystem(
            config=config, silo=SiloConfig(seed=7, num_silos=3), seed=7
        )
        system.register_actor("account", SnapperAccountActor)
        system.start()

        async def burst():
            from repro.runtime.kernel import gather, spawn
            subs = [
                system.submit_pact(
                    "account", i, "multi_transfer",
                    (1.0, [(i + 1) % 8, (i + 2) % 8]),
                    access={i: 1, (i + 1) % 8: 1, (i + 2) % 8: 1},
                )
                for i in range(8)
            ]
            await gather(*[spawn(sub) for sub in subs])
            reads = [
                system.submit_act("account", i, "balance") for i in range(8)
            ]
            return await gather(*[spawn(read) for read in reads])

        balances = system.run(burst())
        assert sum(balances) == pytest.approx(8 * 20_000.0)
        assert system.runtime.cross_silo_messages > 0
        assert system.backend.transport_messages > 0
        system.shutdown()
        system.backend.close()

    def test_close_is_idempotent(self):
        backend = AsyncioBackend(seed=0)
        backend.close()
        backend.close()
