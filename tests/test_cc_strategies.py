"""Concurrency-control strategy selection and the ablation it enables.

Covers the pluggable :class:`ConcurrencyControl` layer: name-based
selection through ``SnapperConfig``, the removed config-level
``wait_die`` boolean (clear errors name the replacement), the lock-level
boolean shim, and — the point of the ablation — that
swapping the strategy name actually changes end-to-end abort behavior.
"""

import pytest

from repro import AbortReason, TransactionAbortedError
from repro.baselines.orleans_txn import OrleansActExecutor, OrleansTxnActor
from repro.core.config import SnapperConfig
from repro.core.engine.act import ActExecutionCore, ActExecutor
from repro.core.engine.concurrency import (
    CC_STRATEGIES,
    ConcurrencyControl,
    NoWait,
    TimeoutOnly,
    TwoPhaseLockingELR,
    WaitDie,
    resolve_concurrency_control,
)
from repro.core.locks import ActorLock
from repro.errors import SimulationError
from repro.sim import gather, spawn

from tests.conftest import build_system


# -- resolution -------------------------------------------------------------

def test_resolve_by_name_instance_class_and_default():
    assert isinstance(resolve_concurrency_control("wait_die"), WaitDie)
    assert isinstance(resolve_concurrency_control("timeout"), TimeoutOnly)
    assert isinstance(resolve_concurrency_control("no_wait"), NoWait)
    assert isinstance(resolve_concurrency_control(None), WaitDie)
    instance = TimeoutOnly()
    assert resolve_concurrency_control(instance) is instance
    assert isinstance(resolve_concurrency_control(NoWait), NoWait)


def test_resolve_unknown_name_raises():
    with pytest.raises(ValueError, match="unknown concurrency control"):
        resolve_concurrency_control("optimistic")


def test_registry_contains_all_shipped_strategies():
    assert {"wait_die", "timeout", "no_wait", "2pl_elr"} <= set(CC_STRATEGIES)


# -- SnapperConfig selection + removed-option errors --------------------------

def test_config_selects_strategy_by_name():
    assert SnapperConfig().concurrency_control == "wait_die"
    assert (SnapperConfig(concurrency_control="timeout").concurrency_control
            == "timeout")
    with pytest.raises(ValueError, match="unknown concurrency_control"):
        SnapperConfig(concurrency_control="mvcc")


def test_config_wait_die_flag_is_gone():
    with pytest.raises(TypeError, match="concurrency_control"):
        SnapperConfig(wait_die=False)
    with pytest.raises(AttributeError, match="concurrency_control"):
        SnapperConfig().wait_die


def test_config_unknown_option_and_positional_args_rejected():
    with pytest.raises(TypeError, match="unknown SnapperConfig option"):
        SnapperConfig(num_cordinators=2)  # typo'd key fails loudly
    with pytest.raises(TypeError):
        SnapperConfig(2)  # every tunable is keyword-only


def test_config_dict_round_trip():
    config = SnapperConfig(concurrency_control="timeout", num_loggers=2,
                           observability=True)
    data = config.to_dict()
    assert data["concurrency_control"] == "timeout"
    assert data["num_loggers"] == 2
    clone = SnapperConfig.from_dict(data)
    assert clone.to_dict() == data
    with pytest.raises(TypeError, match="wait_die"):
        SnapperConfig.from_dict({**data, "wait_die": True})


def test_actor_lock_boolean_shim():
    assert isinstance(ActorLock(wait_die=True).cc, WaitDie)
    assert isinstance(ActorLock(wait_die=False).cc, TimeoutOnly)
    assert isinstance(ActorLock().cc, WaitDie)
    # positional boolean (legacy call sites) still means wait_die
    assert isinstance(ActorLock(False).cc, TimeoutOnly)
    assert isinstance(ActorLock(NoWait()).cc, NoWait)
    with pytest.raises(SimulationError):
        ActorLock(WaitDie(), wait_die=True)


# -- the ablation: strategy choice changes abort behavior ---------------------

def _run_contended(strategy):
    """30 concurrent single-actor deposits; return (outcomes, balance)."""
    system = build_system(seed=3, concurrency_control=strategy)

    async def one(i):
        try:
            await system.submit_act("account", 0, "deposit", 1.0)
            return "committed"
        except TransactionAbortedError as exc:
            return exc.reason

    async def main():
        outcomes = await gather(*[spawn(one(i)) for i in range(30)])
        balance = await system.submit_act("account", 0, "balance")
        return outcomes, balance

    return system.run(main())


def test_wait_die_vs_timeout_changes_abort_behavior():
    """The §4.3.2 ablation is real: wait-die kills younger conflicting
    ACTs, while timeout-only lets them queue on the lock and commit."""
    wd_outcomes, wd_balance = _run_contended("wait_die")
    to_outcomes, to_balance = _run_contended("timeout")

    wd_aborts = [o for o in wd_outcomes if o != "committed"]
    assert wd_aborts, "wait-die should abort some contending ACTs"
    assert set(wd_aborts) == {AbortReason.ACT_CONFLICT}
    assert wd_balance == pytest.approx(100.0 + wd_outcomes.count("committed"))

    # no deadlock is possible on a single lock: with timeout-only every
    # deposit queues and commits — no wait-die victims.
    assert to_outcomes.count("committed") == len(to_outcomes)
    assert to_balance == pytest.approx(130.0)
    assert to_outcomes.count("committed") > wd_outcomes.count("committed")


def test_no_wait_aborts_every_conflict():
    outcomes, balance = _run_contended("no_wait")
    aborts = [o for o in outcomes if o != "committed"]
    assert aborts and set(aborts) == {AbortReason.ACT_CONFLICT}
    assert balance == pytest.approx(100.0 + outcomes.count("committed"))


def test_engine_wires_configured_strategy_onto_lock():
    system = build_system(concurrency_control="no_wait")

    async def main():
        await system.submit_act("account", 4, "deposit", 1.0)

    system.run(main())
    activation = system.runtime._activations[system.actor("account", 4).id]
    assert isinstance(activation.actor._lock.cc, NoWait)
    assert isinstance(activation.actor._acts, ActExecutor)
    assert activation.actor._acts.cc is activation.actor._lock.cc


# -- the baseline shares the same interfaces ----------------------------------

def test_orleans_engine_is_built_on_the_shared_core():
    assert issubclass(OrleansActExecutor, ActExecutionCore)
    assert issubclass(TwoPhaseLockingELR, ConcurrencyControl)
    assert TwoPhaseLockingELR.early_lock_release is True
    assert WaitDie.early_lock_release is False


def test_orleans_actor_uses_strategy_lock():
    from repro.baselines.orleans_txn import OrleansTxnConfig, OrleansTxnSystem

    class Counter(OrleansTxnActor):
        def initial_state(self):
            return 0

        async def bump(self, ctx, _input=None):
            state = await self.get_state(ctx)
            self._state = state + 1
            return self._state

    for elr, expected in ((True, TwoPhaseLockingELR), (False, TimeoutOnly)):
        system = OrleansTxnSystem(
            config=OrleansTxnConfig(early_lock_release=elr), seed=5
        )
        system.register_actor("counter", Counter)
        assert system.run(system.submit("counter", 0, "bump")) == 1
        activation = system.runtime._activations[
            system.actor("counter", 0).id
        ]
        assert isinstance(activation.actor._lock.cc, expected)
        assert activation.actor._engine.cc is activation.actor._lock.cc
