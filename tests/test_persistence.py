"""Tests for log records, WAL backends, and logger group-commit."""

import os

import pytest

from repro import sim
from repro.persistence import (
    ActCommitRecord,
    ActPrepareRecord,
    BatchCommitRecord,
    BatchCompleteRecord,
    BatchInfoRecord,
    CoordCommitRecord,
    CoordPrepareRecord,
    FileLogStorage,
    Logger,
    LoggerGroup,
    WriteAheadLog,
)
from repro.persistence.records import RECORD_HEADER_BYTES
from repro.sim import IoDevice, SimLoop


def test_record_sizes_scale_with_state():
    small = BatchCompleteRecord(bid=1, actor="a", state=1.0)
    large = BatchCompleteRecord(bid=1, actor="a", state=list(range(1000)))
    read_only = BatchCompleteRecord(bid=1, actor="a", state=None)
    assert read_only.size_bytes() == RECORD_HEADER_BYTES
    assert small.size_bytes() > read_only.size_bytes()
    assert large.size_bytes() > small.size_bytes()


def test_record_size_is_cached():
    record = ActPrepareRecord(tid=1, actor="a", state={"x": 1})
    assert record.size_bytes() == record.size_bytes()


def test_batch_info_size_scales_with_participants():
    few = BatchInfoRecord(bid=1, coordinator=0, participants=("a",))
    many = BatchInfoRecord(bid=1, coordinator=0, participants=tuple("abcdefgh"))
    assert many.size_bytes() > few.size_bytes()


def test_wal_append_and_scan_order():
    wal = WriteAheadLog()
    records = [
        BatchInfoRecord(bid=1, coordinator=0, participants=("a", "b")),
        BatchCompleteRecord(bid=1, actor="a", state=10),
        BatchCommitRecord(bid=1),
    ]
    for r in records:
        wal.append(r)
    assert list(wal.scan()) == records
    assert len(wal) == 3


def test_wal_rejects_non_records():
    wal = WriteAheadLog()
    with pytest.raises(TypeError):
        wal.append("not a record")


def test_wal_records_of_and_last():
    wal = WriteAheadLog()
    wal.append(BatchCommitRecord(bid=1))
    wal.append(ActCommitRecord(tid=5, actor="a"))
    wal.append(BatchCommitRecord(bid=7))
    commits = list(wal.records_of(BatchCommitRecord))
    assert [c.bid for c in commits] == [1, 7]
    last = wal.last(lambda r: isinstance(r, BatchCommitRecord))
    assert last.bid == 7
    assert wal.last(lambda r: isinstance(r, CoordCommitRecord)) is None


def test_file_storage_round_trip(tmp_path):
    path = str(tmp_path / "wal" / "log0.bin")
    storage = FileLogStorage(path)
    wal = WriteAheadLog(storage)
    wal.append(CoordPrepareRecord(tid=3, coordinator="a", participants=("a", "b")))
    wal.append(CoordCommitRecord(tid=3))
    storage.close()

    # a fresh process re-reads the same records
    recovered = WriteAheadLog(FileLogStorage(path))
    records = list(recovered.scan())
    assert len(records) == 2
    assert records[0].tid == 3
    assert records[0].participants == ("a", "b")
    assert isinstance(records[1], CoordCommitRecord)
    assert len(recovered) == 2


def test_file_storage_truncate(tmp_path):
    path = str(tmp_path / "log.bin")
    storage = FileLogStorage(path)
    storage.append(BatchCommitRecord(bid=1))
    storage.truncate()
    assert len(storage) == 0
    assert list(storage.scan()) == []
    assert os.path.getsize(path) == 0


def test_logger_persist_waits_for_io():
    loop = SimLoop()
    logger = Logger(IoDevice(base_latency=0.01, per_byte=0.0))

    async def main():
        await logger.persist(BatchCommitRecord(bid=1))
        return sim.now()

    assert loop.run_until_complete(main()) == pytest.approx(0.01)
    assert len(logger.wal) == 1
    assert logger.records_persisted == 1


def test_group_commit_amortizes_flushes():
    def run(group_commit):
        loop = SimLoop()
        logger = Logger(
            IoDevice(base_latency=0.005, per_byte=0.0),
            group_commit=group_commit,
        )

        async def main():
            await sim.gather(
                *[
                    sim.spawn(logger.persist(BatchCommitRecord(bid=i)))
                    for i in range(20)
                ]
            )
            return sim.now(), logger.io.flushes

        return loop.run_until_complete(main())

    grouped_time, grouped_flushes = run(True)
    solo_time, solo_flushes = run(False)
    assert grouped_flushes < solo_flushes
    assert grouped_time < solo_time
    # all 20 appends land before the flush task first runs: one flush
    assert grouped_flushes == 1
    assert solo_flushes == 20


def test_group_commit_flush_byte_budget_splits_batches():
    record_size = BatchCommitRecord(bid=0).size_bytes()

    def run(max_flush_bytes):
        loop = SimLoop()
        logger = Logger(
            IoDevice(base_latency=0.005, per_byte=0.0),
            max_flush_bytes=max_flush_bytes,
        )

        async def main():
            await sim.gather(
                *[
                    sim.spawn(logger.persist(BatchCommitRecord(bid=i)))
                    for i in range(20)
                ]
            )

        loop.run_until_complete(main())
        return logger

    capped = run(2 * record_size)
    # 20 queued records, 2 per flush: 10 flushes, 9 of them split points
    assert capped.io.flushes == 10
    assert capped.flush_splits == 9
    # FIFO order survives the slicing
    assert [r.bid for r in capped.wal.scan()] == list(range(20))

    uncapped = run(None)
    assert uncapped.io.flushes == 1
    assert uncapped.flush_splits == 0
    assert [r.bid for r in uncapped.wal.scan()] == list(range(20))

    # a budget smaller than one record still makes progress, one at a time
    tiny = run(1)
    assert tiny.io.flushes == 20
    assert [r.bid for r in tiny.wal.scan()] == list(range(20))


def test_logger_group_stable_assignment():
    group = LoggerGroup(num_loggers=4)
    for actor in ("a", "b", "c", 1, 2, 3):
        assert group.logger_for(actor) is group.logger_for(actor)


def test_logger_group_disabled_is_free():
    loop = SimLoop()
    group = LoggerGroup(num_loggers=2, enabled=False)

    async def main():
        await group.persist("a", BatchCommitRecord(bid=1))
        return sim.now()

    assert loop.run_until_complete(main()) == 0.0
    assert group.records_persisted() == 0


def test_logger_group_all_records_merges_logs():
    loop = SimLoop()
    group = LoggerGroup(num_loggers=3)

    async def main():
        for i in range(9):
            await group.persist(f"actor-{i}", BatchCommitRecord(bid=i))

    loop.run_until_complete(main())
    bids = sorted(r.bid for r in group.all_records())
    assert bids == list(range(9))
    assert group.records_persisted() == 9
    assert group.bytes_written() > 0


def test_logger_group_requires_at_least_one():
    with pytest.raises(ValueError):
        LoggerGroup(num_loggers=0)
