"""Unit tests for the commit registry (bid-order commit, §4.2.4)."""

import pytest

from repro import sim
from repro.core.registry import CommitRegistry
from repro.errors import SimulationError, TransactionAbortedError
from repro.sim import SimLoop


def run(coro):
    return SimLoop().run_until_complete(coro)


def test_batches_commit_in_bid_order():
    registry = CommitRegistry()
    registry.register_batch(1, 0, ())
    registry.register_batch(5, 1, ())
    with pytest.raises(SimulationError, match="out of bid order"):
        registry.mark_committed(5)
    registry.mark_committed(1)
    registry.mark_committed(5)
    assert registry.last_committed_bid == 5


def test_register_out_of_order_rejected():
    registry = CommitRegistry()
    registry.register_batch(10, 0, ())
    with pytest.raises(SimulationError, match="out of order"):
        registry.register_batch(5, 0, ())


def test_wait_turn_blocks_until_predecessor_commits():
    registry = CommitRegistry()
    registry.register_batch(1, 0, ())
    registry.register_batch(2, 1, ())
    order = []

    async def committer(bid):
        await registry.wait_turn_to_commit(bid)
        registry.mark_committed(bid)
        order.append(bid)

    async def main():
        second = sim.spawn(committer(2))
        await sim.sleep(0.1)
        assert not second.done()
        first = sim.spawn(committer(1))
        await sim.gather(first, second)

    run(main())
    assert order == [1, 2]


def test_wait_turn_raises_for_aborted_batch():
    registry = CommitRegistry()
    registry.register_batch(1, 0, ())
    registry.register_batch(2, 1, ())

    async def main():
        waiter = sim.spawn(registry.wait_turn_to_commit(2))
        await sim.sleep(0.01)
        registry.mark_aborted(2)
        with pytest.raises(TransactionAbortedError):
            await waiter

    run(main())


def test_is_committed_below_watermark_after_gc():
    registry = CommitRegistry()
    registry.register_batch(1, 0, ())
    registry.mark_committed(1)
    assert registry.is_committed(1)
    assert registry.is_committed(0)  # below watermark => presumed committed
    assert not registry.is_committed(2)


def test_wait_until_committed_resolves_and_raises():
    registry = CommitRegistry()
    registry.register_batch(1, 0, ())
    registry.register_batch(2, 1, ())

    async def main():
        w1 = sim.spawn(registry.wait_until_committed(1))
        w2 = sim.spawn(registry.wait_until_committed(2))
        await sim.sleep(0.01)
        registry.mark_committed(1)
        await w1
        registry.mark_aborted(2)
        with pytest.raises(TransactionAbortedError):
            await w2

    run(main())


def test_wait_until_committed_timeout():
    registry = CommitRegistry()
    registry.register_batch(1, 0, ())

    async def main():
        with pytest.raises(TimeoutError):
            await registry.wait_until_committed(1, timeout=0.2)
        return sim.now()

    assert run(main()) == pytest.approx(0.2)


def test_uncommitted_batches_lists_pending_chain():
    registry = CommitRegistry()
    registry.register_batch(1, 0, ("a",))
    registry.register_batch(2, 1, ("b",))
    registry.mark_committed(1)
    pending = registry.uncommitted_batches()
    assert [b.bid for b in pending] == [2]
    assert pending[0].participants == ("b",)


def test_abort_unknown_batch_is_noop():
    registry = CommitRegistry()
    registry.mark_aborted(99)
    assert registry.batches_aborted == 0


def test_reset_clears_state():
    registry = CommitRegistry()
    registry.register_batch(1, 0, ())
    registry.mark_committed(1)
    registry.reset()
    assert registry.last_committed_bid == -1
    assert registry.uncommitted_batches() == []
    # a smaller bid is registrable again after reset
    registry.register_batch(1, 0, ())
