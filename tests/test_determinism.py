"""Whole-system determinism: the same seed reproduces the same run.

Determinism is the simulator's core promise (reproducible experiments,
debuggable failures) and a consequence of the seeded RNG plus the
sequence-numbered event queue.
"""

import random

import pytest

from repro.workloads.distributions import make_distribution
from repro.workloads.runner import EngineRunner, run_epochs
from repro.workloads.smallbank import (
    ACCOUNT_KIND,
    SmallBankWorkload,
    SnapperAccountActor,
)

FAMILIES = {"snapper": {ACCOUNT_KIND: SnapperAccountActor}}


def run_once(engine, seed):
    runner = EngineRunner(engine, FAMILIES, seed=seed)
    dist = make_distribution("medium", 500, runner.loop.rng)
    workload = SmallBankWorkload(dist, txn_size=4,
                                 rng=random.Random(seed + 7),
                                 pact_fraction=0.7)
    result = run_epochs(
        runner, workload.next_txn, num_clients=2, pipeline_size=6,
        epochs=2, epoch_duration=0.15, warmup_epochs=1,
    )
    metrics = result.metrics
    return {
        "committed": metrics.committed,
        "attempted": metrics.attempted,
        "p50": metrics.latency_percentiles((50,))[50],
        "p99": metrics.latency_percentiles((99,))[99],
        "aborts": tuple(sorted(metrics.abort_breakdown().items())),
        "messages": result.stats["messages_sent"],
        "log_records": result.stats.get("log_records"),
        "final_time": runner.loop.now,
    }


@pytest.mark.parametrize("engine", ["pact", "act", "hybrid"])
def test_same_seed_reproduces_everything(engine):
    first = run_once(engine, seed=13)
    second = run_once(engine, seed=13)
    assert first == second


def test_different_seeds_differ():
    a = run_once("hybrid", seed=13)
    b = run_once("hybrid", seed=14)
    assert a != b
