"""Durability across *process* boundaries: file-backed WALs.

A SnapperSystem with ``log_dir`` set persists its WAL as pickle files;
a brand-new system instance pointed at the same directory recovers the
committed state — the strongest durability story the library offers.
"""

from repro import SnapperConfig, SnapperSystem

from tests.conftest import AccountActor


def make_system(tmp_path, seed=3):
    system = SnapperSystem(
        config=SnapperConfig(log_dir=str(tmp_path / "wal")), seed=seed
    )
    system.register_actor("account", AccountActor)
    system.start()
    return system


def test_committed_state_survives_new_system_instance(tmp_path):
    first = make_system(tmp_path)

    async def phase1():
        await first.submit_pact(
            "account", 1, "transfer", (40.0, 2), access={1: 1, 2: 1}
        )
        await first.submit_act("account", 3, "deposit", 7.0)

    first.run(phase1())
    first.shutdown()

    # a completely fresh process: new loop, new runtime, same directory
    second = make_system(tmp_path, seed=99)

    async def phase2():
        await second.recover()
        return [
            await second.submit_act("account", key, "balance")
            for key in (1, 2, 3)
        ]

    assert second.run(phase2()) == [60.0, 140.0, 107.0]


def test_lsn_resumes_above_existing_records(tmp_path):
    first = make_system(tmp_path)

    async def phase1():
        await first.submit_pact("account", 1, "deposit", 1.0, access={1: 1})

    first.run(phase1())
    max_lsn_before = max(r.lsn for r in first.loggers.all_records())
    first.shutdown()

    second = make_system(tmp_path, seed=4)

    async def phase2():
        await second.recover()
        await second.submit_pact("account", 1, "deposit", 1.0, access={1: 1})

    second.run(phase2())
    new_records = [
        r for r in second.loggers.all_records() if r.lsn > max_lsn_before
    ]
    assert new_records, "new records must continue the LSN sequence"
    lsns = [r.lsn for r in second.loggers.all_records()]
    assert len(lsns) == len(set(lsns)), "LSNs must stay unique"


def test_uncommitted_work_absent_after_restart(tmp_path):
    first = make_system(tmp_path)

    async def phase1():
        await first.submit_act("account", 5, "deposit", 10.0)  # committed
        # an in-flight PACT: submit and advance a tiny bit, then drop it
        from repro.sim import spawn

        spawn(first.submit_pact(
            "account", 6, "deposit", 99.0, access={6: 1}
        ))

    first.run(phase1())
    # abandon the first system mid-flight (process dies)
    second = make_system(tmp_path, seed=7)

    async def phase2():
        await second.recover()
        b5 = await second.submit_act("account", 5, "balance")
        b6 = await second.submit_act("account", 6, "balance")
        return b5, b6

    b5, b6 = second.run(phase2())
    assert b5 == 110.0
    assert b6 in (100.0, 199.0)  # committed iff its full commit chain logged
