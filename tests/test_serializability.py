"""Serializability stress tests.

Each transaction appends its tid to the history list of every actor it
touches.  Conflict serializability implies: for any two committed
transactions that both touched two (or more) common actors, their
relative order must be the same on every common actor.  We check that
pairwise property over mixed PACT/ACT histories under contention.
"""

import itertools

import pytest

from repro import (
    AccessMode,
    SnapperConfig,
    SnapperSystem,
    TransactionAbortedError,
    TransactionalActor,
)
from repro.sim import gather, spawn


class HistoryActor(TransactionalActor):
    """State is the ordered list of tids that wrote this actor."""

    def initial_state(self):
        return []

    async def mark(self, ctx, _input=None):
        state = await self.get_state(ctx, AccessMode.READ_WRITE)
        state.append(ctx.tid)
        return ctx.tid

    async def mark_many(self, ctx, other_keys):
        from repro import FuncCall

        state = await self.get_state(ctx, AccessMode.READ_WRITE)
        state.append(ctx.tid)
        for key in other_keys:
            await self.call_actor(
                ctx, self.ref("history", key).id, FuncCall("mark")
            )
        return ctx.tid


def build():
    system = SnapperSystem(config=SnapperConfig(), seed=31)
    system.register_actor("history", HistoryActor)
    system.start()
    return system


def committed_histories(system, keys):
    """Final committed history list per actor."""
    out = {}
    for key in keys:
        activation = system.runtime._activations.get(
            system.actor("history", key).id
        )
        out[key] = list(activation.actor._committed_state) if activation else []
    return out


def assert_pairwise_consistent(histories):
    """Any two txns sharing >= 2 actors appear in the same order on all."""
    positions = {}  # tid -> {actor: index}
    for actor, history in histories.items():
        for index, tid in enumerate(history):
            positions.setdefault(tid, {})[actor] = index
    tids = list(positions)
    for a, b in itertools.combinations(tids, 2):
        common = set(positions[a]) & set(positions[b])
        if len(common) < 2:
            continue
        orders = {positions[a][actor] < positions[b][actor]
                  for actor in common}
        assert len(orders) == 1, (
            f"txns {a} and {b} ordered inconsistently across {common}"
        )


def run_mixed(system, num_txns, keys, pact_every):
    outcomes = []

    async def one(i):
        start = keys[i % len(keys)]
        others = [keys[(i + 1) % len(keys)], keys[(i + 2) % len(keys)]]
        use_pact = i % pact_every == 0
        try:
            if use_pact:
                access = {start: 1}
                for key in others:
                    access[key] = access.get(key, 0) + 1
                await system.submit_pact(
                    "history", start, "mark_many", others, access=access
                )
            else:
                await system.submit_act("history", start, "mark_many", others)
            outcomes.append("committed")
        except TransactionAbortedError as exc:
            outcomes.append(exc.reason)

    async def main():
        from repro import sim

        await gather(*[spawn(one(i)) for i in range(num_txns)])
        # let trailing BatchCommit / act_commit messages drain before the
        # test inspects committed states
        await sim.sleep(0.1)

    system.run(main())
    return outcomes


def test_pact_only_history_is_serializable():
    system = build()
    keys = list(range(4))
    outcomes = run_mixed(system, 24, keys, pact_every=1)
    assert outcomes.count("committed") == 24  # PACTs never abort
    histories = committed_histories(system, keys)
    assert_pairwise_consistent(histories)
    # every committed txn appears exactly 3 times (3 actors each)
    flattened = [tid for h in histories.values() for tid in h]
    for tid in set(flattened):
        assert flattened.count(tid) == 3


def test_act_only_history_is_serializable():
    system = build()
    keys = list(range(4))
    outcomes = run_mixed(system, 24, keys, pact_every=10**9)
    assert "committed" in outcomes
    histories = committed_histories(system, keys)
    assert_pairwise_consistent(histories)


@pytest.mark.parametrize("pact_every", [2, 3])
def test_hybrid_history_is_serializable(pact_every):
    system = build()
    keys = list(range(5))
    outcomes = run_mixed(system, 30, keys, pact_every=pact_every)
    assert outcomes.count("committed") >= 10
    histories = committed_histories(system, keys)
    assert_pairwise_consistent(histories)
    # no aborted transaction's mark may survive in committed state
    committed_count = outcomes.count("committed")
    flattened = [tid for h in histories.values() for tid in h]
    assert len(set(flattened)) == committed_count


def test_committed_marks_equal_committed_txns():
    """Atomicity: a committed txn's marks appear on ALL its actors."""
    system = build()
    keys = list(range(4))
    run_mixed(system, 20, keys, pact_every=2)
    histories = committed_histories(system, keys)
    flattened = [tid for h in histories.values() for tid in h]
    for tid in set(flattened):
        assert flattened.count(tid) == 3, (
            f"txn {tid} committed partially ({flattened.count(tid)}/3 marks)"
        )
