"""The repro.obs report CLI and the chaos harness's obs mirror."""

import json

import pytest

from repro.chaos.harness import ChaosHarness
from repro.chaos.plan import FaultPlan
from repro.obs.report import (
    check_nesting,
    check_phase_sums,
    main,
    render_breakdown,
)
from repro.obs.spans import build_spans
from repro.trace import TxnTracer


def _tracer():
    """Two committed transactions (one PACT, one ACT) plus an in-flight."""
    tracer = TxnTracer()
    rows = [
        (1.0, 7, "submitted", "PACT", None),
        (1.2, 7, "registered", "PACT", None),
        (1.5, 7, "turn_started", "PACT", "a"),
        (1.6, 7, "turn_done", "PACT", "a"),
        (1.8, 7, "execution_done", "PACT", None),
        (2.4, 7, "committed", "PACT", None),
        (1.1, 8, "submitted", "ACT", None),
        (1.15, 8, "registered", "ACT", None),
        (1.3, 8, "admitted", "ACT", "b"),
        (1.5, 8, "state_access", "ACT", "b"),
        (1.7, 8, "execution_done", "ACT", None),
        (2.0, 8, "committed", "ACT", None),
        (2.5, 9, "registered", "ACT", None),  # in flight: never reported
    ]
    for when, tid, name, mode, actor in rows:
        tracer.record(when, tid, name, mode=mode, actor=actor)
    return tracer


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "run.jsonl"
    _tracer().dump_jsonl(str(path))
    return str(path)


def test_render_breakdown_table():
    spans = build_spans(_tracer())
    table = render_breakdown(spans)
    assert "PACT" in table and "ACT" in table and "ALL" in table
    assert "phase-sum" in table and "latency" in table
    # PACT latency 1.4 s = 1400 ms appears in the table
    assert "1400.000" in table


def test_checkers_pass_on_well_formed_spans():
    spans = build_spans(_tracer())
    assert check_phase_sums(spans) == []
    assert check_nesting(spans) == []


def test_report_from_trace_file(capsys, trace_file):
    assert main(["report", "--trace-in", trace_file]) == 0
    out = capsys.readouterr().out
    assert "phase latency breakdown" in out
    assert "PACT" in out and "ACT" in out


def test_report_json_output(capsys, trace_file):
    assert main(["report", "--trace-in", trace_file, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["transactions"] == 2
    assert payload["modes"]["PACT"]["count"] == 1
    assert payload["modes"]["ACT"]["count"] == 1


def test_report_smoke_from_trace_file(capsys, tmp_path, trace_file):
    trace_out = tmp_path / "chrome.json"
    code = main([
        "report", "--trace-in", trace_file, "--smoke",
        "--trace-out", str(trace_out),
    ])
    assert code == 0
    assert "SMOKE OK" in capsys.readouterr().out
    document = json.loads(trace_out.read_text(encoding="utf-8"))
    assert document["traceEvents"]


def test_report_smoke_fails_on_empty_trace(capsys, tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("", encoding="utf-8")
    assert main(["report", "--trace-in", str(path), "--smoke"]) == 1
    assert "SMOKE FAILED" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# chaos harness: obs mirror keeps the report bit-for-bit deterministic
# ---------------------------------------------------------------------------
def test_chaos_report_identical_with_obs_enabled():
    plan = FaultPlan.generate(2, duration=0.4)
    baseline = ChaosHarness(plan).run()
    plan_obs = FaultPlan.generate(2, duration=0.4)
    plan_obs.meta["observability"] = True
    harness = ChaosHarness(plan_obs)
    mirrored = harness.run()
    assert mirrored.to_dict() == baseline.to_dict()
    # the registry mirrors the tally exactly
    obs = harness.system.obs
    assert obs.enabled
    for status, count in mirrored.outcome_tally.items():
        assert obs.value_of(
            "snapper_chaos_outcomes_total", status=status
        ) == count
