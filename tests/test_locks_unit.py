"""Unit tests for the wait-die S2PL actor lock (§4.3.2)."""

import pytest

from repro import sim
from repro.core.context import AccessMode
from repro.core.locks import ActorLock
from repro.errors import DeadlockError
from repro.sim import SimLoop


def run(coro):
    return SimLoop().run_until_complete(coro)


def test_shared_reads_coexist():
    lock = ActorLock()

    async def main():
        await lock.acquire(1, AccessMode.READ)
        await lock.acquire(2, AccessMode.READ)
        assert lock.holders == {1, 2}

    run(main())


def test_write_excludes_others():
    lock = ActorLock()

    async def main():
        await lock.acquire(5, AccessMode.READ_WRITE)
        blocked = sim.spawn(lock.acquire(1, AccessMode.READ))  # older: waits
        await sim.sleep(1)
        assert not blocked.done()
        lock.release(5)
        await blocked
        assert lock.holders == {1}

    run(main())


def test_wait_die_younger_requester_dies():
    lock = ActorLock()

    async def main():
        await lock.acquire(1, AccessMode.READ_WRITE)  # old txn holds
        with pytest.raises(DeadlockError):
            await lock.acquire(2, AccessMode.READ_WRITE)  # younger dies
        assert lock.wait_die_aborts == 1

    run(main())


def test_wait_die_older_requester_waits():
    lock = ActorLock()

    async def main():
        await lock.acquire(10, AccessMode.READ_WRITE)  # young txn holds
        waiter = sim.spawn(lock.acquire(3, AccessMode.READ_WRITE))
        await sim.sleep(1)
        assert not waiter.done()
        lock.release(10)
        await waiter
        assert lock.holders == {3}

    run(main())


def test_reentrant_acquire_same_mode():
    lock = ActorLock()

    async def main():
        await lock.acquire(1, AccessMode.READ_WRITE)
        await lock.acquire(1, AccessMode.READ_WRITE)  # no self-deadlock
        await lock.acquire(1, AccessMode.READ)  # weaker mode: fine
        assert lock.holders == {1}

    run(main())


def test_upgrade_read_to_write_when_sole_holder():
    lock = ActorLock()

    async def main():
        await lock.acquire(1, AccessMode.READ)
        await lock.acquire(1, AccessMode.READ_WRITE)
        assert lock.held_by(1) == AccessMode.READ_WRITE

    run(main())


def test_timeout_mode_aborts_after_deadline():
    lock = ActorLock(wait_die=False)

    async def main():
        await lock.acquire(10, AccessMode.READ_WRITE)
        start = sim.now()
        with pytest.raises(DeadlockError):
            await lock.acquire(20, AccessMode.READ_WRITE, timeout=0.5)
        assert sim.now() - start == pytest.approx(0.5)
        assert lock.timeout_aborts == 1

    run(main())


def test_fifo_grant_order_on_release():
    lock = ActorLock(wait_die=False)
    order = []

    async def grab(tid):
        await lock.acquire(tid, AccessMode.READ_WRITE)
        order.append(tid)
        await sim.sleep(0.1)
        lock.release(tid)

    async def main():
        first = sim.spawn(grab(1))
        await sim.sleep(0.01)
        rest = [sim.spawn(grab(t)) for t in (4, 2, 3)]
        await sim.gather(first, *rest)

    run(main())
    assert order == [1, 4, 2, 3]


def test_release_grants_multiple_readers_at_once():
    lock = ActorLock(wait_die=False)

    async def main():
        await lock.acquire(1, AccessMode.READ_WRITE)
        r1 = sim.spawn(lock.acquire(2, AccessMode.READ))
        r2 = sim.spawn(lock.acquire(3, AccessMode.READ))
        await sim.sleep(0.01)
        lock.release(1)
        await sim.gather(r1, r2)
        assert lock.holders == {2, 3}

    run(main())


def test_abort_waiter_evicts_queued_request():
    lock = ActorLock(wait_die=False)

    async def main():
        await lock.acquire(1, AccessMode.READ_WRITE)
        waiter = sim.spawn(lock.acquire(2, AccessMode.READ_WRITE))
        await sim.sleep(0.01)
        lock.abort_waiter(2, "act_conflict")
        with pytest.raises(DeadlockError):
            await waiter
        assert lock.queue_length == 0

    run(main())


def test_writer_queued_behind_reader_blocks_new_reader():
    """FIFO fairness: late readers don't starve a queued writer."""
    lock = ActorLock(wait_die=False)

    async def main():
        await lock.acquire(1, AccessMode.READ)
        writer = sim.spawn(lock.acquire(2, AccessMode.READ_WRITE))
        await sim.sleep(0.01)
        late_reader = sim.spawn(lock.acquire(3, AccessMode.READ))
        await sim.sleep(0.01)
        assert not writer.done() and not late_reader.done()
        lock.release(1)
        await writer
        assert lock.held_by(2) == AccessMode.READ_WRITE
        lock.release(2)
        await late_reader

    run(main())
