"""Tests for repro.verify, plus audited end-to-end executions."""

import pytest

from repro import AccessMode, SnapperSystem, TransactionAbortedError, TransactionalActor
from repro.verify import (
    AccessRecorder,
    assert_serializable,
    build_serialization_graph,
    find_cycle,
    is_serializable,
    serialization_order,
)

R, W = AccessMode.READ, AccessMode.READ_WRITE


# ---------------------------------------------------------------------------
# graph construction on hand-written histories
# ---------------------------------------------------------------------------
def test_serial_history_is_serializable():
    logs = {"x": [(1, W), (2, W)], "y": [(1, W), (2, R)]}
    assert is_serializable(logs)
    assert serialization_order(logs) == [1, 2]


def test_write_write_cycle_detected():
    logs = {"x": [(1, W), (2, W)], "y": [(2, W), (1, W)]}
    assert not is_serializable(logs)
    cycle = find_cycle(build_serialization_graph(logs))
    assert set(cycle) == {1, 2}
    with pytest.raises(AssertionError, match="cycle"):
        assert_serializable(logs)


def test_read_write_conflicts_create_edges():
    # r1(x) w2(x): edge 1 -> 2; w2(y) r1(y) would be 2 -> 1: cycle
    logs = {"x": [(1, R), (2, W)], "y": [(2, W), (1, R)]}
    assert not is_serializable(logs)


def test_reads_do_not_conflict():
    logs = {"x": [(1, R), (2, R)], "y": [(2, R), (1, R)]}
    graph = build_serialization_graph(logs)
    assert graph.number_of_edges() == 0
    assert is_serializable(logs)


def test_multiple_readers_then_writer():
    logs = {"x": [(1, R), (2, R), (3, W)]}
    graph = build_serialization_graph(logs)
    assert set(graph.edges) == {(1, 3), (2, 3)}


def test_same_txn_accesses_no_self_edges():
    logs = {"x": [(1, R), (1, W), (1, W)]}
    graph = build_serialization_graph(logs)
    assert graph.number_of_edges() == 0


def test_recorder_filters_uncommitted():
    recorder = AccessRecorder()
    recorder.record("x", 1, W)
    recorder.record("x", 2, W)  # 2 will abort
    recorder.record("x", 3, W)
    logs = recorder.committed_logs({1, 3})
    assert logs == {"x": [(1, W), (3, W)]}


def test_recorder_rejects_bad_mode():
    recorder = AccessRecorder()
    with pytest.raises(ValueError):
        recorder.record("x", 1, "Write")


# ---------------------------------------------------------------------------
# end-to-end: audit a real hybrid execution with the recorder
# ---------------------------------------------------------------------------
class AuditedActor(TransactionalActor):
    def initial_state(self):
        return 0

    async def touch(self, ctx, other_keys):
        from repro import FuncCall

        recorder = self.runtime.service("recorder")
        state = await self.get_state(ctx, AccessMode.READ_WRITE)
        recorder.record(self.id.key, ctx.tid, AccessMode.READ_WRITE)
        self._state = state + 1
        for key in other_keys or []:
            await self.call_actor(
                ctx, self.ref("audited", key).id, FuncCall("touch", None)
            )
        return ctx.tid


def test_audited_hybrid_execution_is_serializable():
    from repro.sim import gather, spawn

    system = SnapperSystem(seed=57)
    recorder = AccessRecorder()
    system.runtime.services["recorder"] = recorder
    system.register_actor("audited", AuditedActor)
    system.start()
    committed = set()

    async def one(i):
        start = i % 4
        others = [(i + 1) % 4]
        try:
            if i % 2 == 0:
                access = {start: 1, others[0]: 1}
                tid = await system.submit_pact(
                    "audited", start, "touch", others, access=access
                )
            else:
                tid = await system.submit_act("audited", start, "touch", others)
            committed.add(tid)
        except TransactionAbortedError:
            pass

    async def main():
        await gather(*[spawn(one(i)) for i in range(24)])

    system.run(main())
    assert committed, "some transactions must commit"
    logs = recorder.committed_logs(committed)
    assert_serializable(logs, label="hybrid execution")
    # witness order exists
    order = serialization_order(logs)
    assert set(order) >= committed
