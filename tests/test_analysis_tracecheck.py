"""The trace-based schedule checker: violations flagged, clean runs pass.

Three layers of evidence:

* hand-built traces with a known ``max(BS) < min(AS)`` violation and a
  known conflict cycle are flagged;
* a real hybrid run with the online :class:`SerializabilityGuard`
  disabled (and the §4.4.4 commit wait removed) under NoWait produces
  anomalies the offline checker catches;
* clean runs — the contended-deposit scenario of
  ``test_cc_strategies`` and a seeded SmallBank hybrid mix — audit
  green, including through the JSONL dump/load round trip.
"""

import random

import pytest

from repro.analysis import check_trace_file, check_tracer
from repro.analysis.__main__ import main as analysis_main
from repro.core.config import SnapperConfig
from repro.core.context import TxnMode
from repro.core.engine.guard import SerializabilityGuard
from repro.core.registry import CommitRegistry
from repro.sim import gather, spawn
from repro.trace import TxnTracer
from repro.workloads.distributions import UniformDistribution
from repro.workloads.runner import EngineRunner, run_epochs
from repro.workloads.smallbank import (
    ACCOUNT_KIND,
    SmallBankWorkload,
    SnapperAccountActor,
)

from tests.conftest import build_system


# -- hand-built fixture traces ------------------------------------------------

def _violating_tracer():
    """Batch 1 and ACT 20 ordered oppositely on actors X and Y:
    on X the ACT runs after the batch (batch in BS), on Y before it
    (batch in AS) — max(BS) = 1 >= 1 = min(AS)."""
    t = TxnTracer()
    t.record(0.0, 10, "registered", mode=TxnMode.PACT, bid=1)
    t.record(0.1, 10, "state_access", "ReadWrite",
             bid=1, actor="acct/X", access="ReadWrite")
    t.record(0.2, 20, "registered", mode=TxnMode.ACT)
    t.record(0.3, 20, "state_access", "ReadWrite",
             actor="acct/X", access="ReadWrite")
    t.record(0.4, 20, "state_access", "ReadWrite",
             actor="acct/Y", access="ReadWrite")
    t.record(0.5, 10, "state_access", "ReadWrite",
             bid=1, actor="acct/Y", access="ReadWrite")
    t.record(0.6, 10, "committed")
    t.record(0.7, 20, "committed")
    return t


def test_bs_as_violation_is_flagged():
    report = check_tracer(_violating_tracer())
    assert not report.ok
    assert len(report.violations) == 1
    violation = report.violations[0]
    assert violation.tid == 20
    assert violation.max_bs == 1 and violation.min_as == 1
    assert violation.evidence["acct/X"] == (1, None)
    assert violation.evidence["acct/Y"] == (None, 1)
    assert "max(BS)=1" in violation.render()
    # the same anomaly is also a conflict cycle
    assert report.cycle is not None and set(report.cycle) == {10, 20}
    assert "FAIL" in report.render()


def test_aborted_transactions_do_not_constrain_the_schedule():
    t = _violating_tracer()
    # the ACT aborts instead: its accesses were rolled back, so the
    # schedule is just batch 1 alone — clean.
    for trace in t.traces.values():
        if trace.tid == 20:
            trace.events = [
                e for e in trace.events if e.name != "committed"
            ]
    t.record(0.8, 20, "aborted", "serializability")
    report = check_tracer(t)
    assert report.ok
    assert report.num_committed == 1
    assert report.acts_checked == 0


def test_act_only_conflict_cycle_is_flagged():
    """Two ACTs with opposite access order on two actors: not a BS/AS
    issue (no batches) but a classic write-write cycle."""
    t = TxnTracer()
    for tid in (1, 2):
        t.record(0.0, tid, "registered", mode=TxnMode.ACT)
    t.record(0.1, 1, "state_access", "ReadWrite",
             actor="a/X", access="ReadWrite")
    t.record(0.2, 2, "state_access", "ReadWrite",
             actor="a/Y", access="ReadWrite")
    t.record(0.3, 2, "state_access", "ReadWrite",
             actor="a/X", access="ReadWrite")
    t.record(0.4, 1, "state_access", "ReadWrite",
             actor="a/Y", access="ReadWrite")
    t.record(0.5, 1, "committed")
    t.record(0.6, 2, "committed")
    report = check_tracer(t)
    assert report.cycle is not None
    assert not report.violations  # BS/AS is about batches only
    assert not report.ok


def test_reads_do_not_conflict():
    t = TxnTracer()
    for tid in (1, 2):
        t.record(0.0, tid, "registered", mode=TxnMode.ACT)
        t.record(0.1, tid, "state_access", "Read",
                 actor="a/X", access="Read")
        t.record(0.2, tid, "committed")
    report = check_tracer(t)
    assert report.ok


# -- a real run with the online guard disabled --------------------------------

def _run_hybrid(seed, config=None, epoch_duration=0.4):
    rng = random.Random(seed)
    runner = EngineRunner(
        "hybrid",
        {"snapper": {ACCOUNT_KIND: SnapperAccountActor}},
        seed=seed,
        snapper_config=config,
    )
    tracer = TxnTracer(capacity=100_000)
    runner.system.runtime.services["txn_tracer"] = tracer
    workload = SmallBankWorkload(
        UniformDistribution(4, rng), txn_size=3, pact_fraction=0.5, rng=rng
    )
    run_epochs(
        runner, workload.next_txn, num_clients=2, pipeline_size=4,
        epochs=1, epoch_duration=epoch_duration, warmup_epochs=0,
    )
    return tracer


def test_guard_disabled_no_wait_run_is_flagged(monkeypatch):
    """With Theorem 4.2 unenforced, the engine commits non-serializable
    hybrid schedules — and the offline checker catches them."""
    monkeypatch.setattr(
        SerializabilityGuard, "check", lambda self, ctx, info: None
    )

    async def no_wait(self, bid, timeout=None):
        return None

    monkeypatch.setattr(CommitRegistry, "wait_until_committed", no_wait)
    tracer = _run_hybrid(
        seed=1, config=SnapperConfig(concurrency_control="no_wait")
    )
    report = check_tracer(tracer)
    assert not report.ok
    assert report.violations, "expected max(BS) >= min(AS) anomalies"
    assert report.cycle is not None


# -- clean runs must pass -----------------------------------------------------

def test_contended_deposits_audit_clean():
    """The test_cc_strategies scenario: 30 concurrent single-actor
    deposits under wait-die."""
    system = build_system(seed=3, concurrency_control="wait_die")
    tracer = TxnTracer()
    system.runtime.services["txn_tracer"] = tracer

    async def one(i):
        try:
            await system.submit_act("account", 0, "deposit", 1.0)
        except Exception:
            pass

    async def main():
        await gather(*[spawn(one(i)) for i in range(30)])

    system.run(main())
    report = check_tracer(tracer)
    assert report.ok
    assert report.num_committed > 0


def test_clean_hybrid_smallbank_run_passes(tmp_path):
    """A seeded SmallBank hybrid mix audits green, including through
    the JSONL round trip and the CLI."""
    tracer = _run_hybrid(seed=7)
    report = check_tracer(tracer)
    assert report.ok
    assert report.acts_checked > 0, "mix should exercise hybrid ACTs"
    assert report.num_events > 0

    path = tmp_path / "run.jsonl"
    count = tracer.dump_jsonl(str(path))
    assert count > 0
    file_report = check_trace_file(str(path))
    assert file_report.ok
    assert file_report.num_events == report.num_events
    assert analysis_main(["check-trace", str(path)]) == 0


def test_cli_flags_violating_trace(tmp_path, capsys):
    path = tmp_path / "bad.jsonl"
    _violating_tracer().dump_jsonl(str(path))
    assert analysis_main(["check-trace", str(path)]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "max(BS)" in out
