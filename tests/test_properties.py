"""Property-based tests (hypothesis) for core invariants."""

from hypothesis import given, settings, strategies as st

import pytest

from repro import sim
from repro.core.context import AccessMode, SubBatch, TxnExeInfo
from repro.core.locks import ActorLock
from repro.core.registry import CommitRegistry
from repro.core.schedule import LocalSchedule
from repro.errors import DeadlockError
from repro.sim import SimLoop


# ---------------------------------------------------------------------------
# schedule: any arrival order of chained batches executes in bid order
# ---------------------------------------------------------------------------
@given(st.permutations(range(6)))
@settings(max_examples=50, deadline=None)
def test_schedule_executes_chain_in_bid_order_any_arrival(arrival_order):
    bids = [10 * (i + 1) for i in range(6)]  # 10, 20, ..., 60
    prev = {bids[0]: None}
    for earlier, later in zip(bids, bids[1:]):
        prev[later] = earlier
    completed = []
    schedule = LocalSchedule()
    schedule.on_subbatch_complete = lambda e: completed.append(e.bid)
    for index in arrival_order:
        bid = bids[index]
        schedule.register_batch(
            SubBatch(bid=bid, prev_bid=prev[bid], coordinator_key=0,
                     plans=((bid, 1),))
        )
    for bid in bids:
        schedule.await_pact_turn(bid, bid)
    # drive turns to completion; they must release strictly in bid order
    for expected in bids:
        assert schedule.batch_entry(expected).status == "executing"
        schedule.pact_access_done(expected, expected)
    assert completed == bids


# ---------------------------------------------------------------------------
# schedule: intra-batch turn order is ascending tid regardless of plan order
# ---------------------------------------------------------------------------
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=8, unique=True))
@settings(max_examples=50, deadline=None)
def test_schedule_intra_batch_ascending_tids(tids):
    schedule = LocalSchedule()
    plans = tuple(sorted((t, 1) for t in tids))
    schedule.register_batch(
        SubBatch(bid=min(tids), prev_bid=None, coordinator_key=0, plans=plans)
    )
    executed = []
    for tid in sorted(tids):
        fut = schedule.await_pact_turn(min(tids), tid)
        assert fut.done()
        executed.append(tid)
        schedule.pact_access_done(min(tids), tid)
    assert executed == sorted(tids)


# ---------------------------------------------------------------------------
# registry: any interleaving of commit attempts resolves in bid order
# ---------------------------------------------------------------------------
@given(st.permutations(range(5)))
@settings(max_examples=30, deadline=None)
def test_registry_commit_waiters_resolve_in_bid_order(start_order):
    loop = SimLoop()
    registry = CommitRegistry()
    bids = [i * 3 + 1 for i in range(5)]
    for bid in bids:
        registry.register_batch(bid, 0, ())
    committed = []

    async def committer(bid, delay):
        await sim.sleep(delay)
        await registry.wait_turn_to_commit(bid)
        registry.mark_committed(bid)
        committed.append(bid)

    async def main():
        await sim.gather(
            *[
                sim.spawn(committer(bids[i], 0.01 * rank))
                for rank, i in enumerate(start_order)
            ]
        )

    loop.run_until_complete(main())
    assert committed == bids


# ---------------------------------------------------------------------------
# locks: wait-die never deadlocks, all holders eventually release
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.integers(0, 9), st.booleans()),
        min_size=2,
        max_size=12,
    )
)
@settings(max_examples=40, deadline=None)
def test_lock_wait_die_always_terminates(requests):
    loop = SimLoop()
    lock = ActorLock(wait_die=True)
    outcomes = []

    async def txn(tid, write):
        mode = AccessMode.READ_WRITE if write else AccessMode.READ
        try:
            await lock.acquire(tid, mode)
        except DeadlockError:
            outcomes.append(("died", tid))
            return
        await sim.sleep(0.01)
        lock.release(tid)
        outcomes.append(("done", tid))

    async def main():
        # distinct tids per request: tid*100 + index keeps age ordering
        await sim.gather(
            *[
                sim.spawn(txn(tid * 100 + i, write))
                for i, (tid, write) in enumerate(requests)
            ]
        )

    loop.run_until_complete(main())  # would raise on deadlock
    assert len(outcomes) == len(requests)
    assert lock.holders == set()


# ---------------------------------------------------------------------------
# TxnExeInfo: merge is commutative and associative on the fields we use
# ---------------------------------------------------------------------------
def _info(participants, max_bs, min_as, incomplete):
    info = TxnExeInfo()
    info.participants = set(participants)
    info.max_bs = max_bs
    info.min_as = min_as
    info.as_incomplete_on = set(incomplete)
    return info


info_strategy = st.builds(
    _info,
    st.sets(st.integers(0, 5), max_size=4),
    st.one_of(st.none(), st.integers(0, 100)),
    st.one_of(st.none(), st.integers(0, 100)),
    st.sets(st.integers(0, 5), max_size=3),
)


def _merged(a, b):
    result = a.snapshot()
    result.merge(b.snapshot())
    return (
        frozenset(result.participants),
        result.max_bs,
        result.min_as,
        frozenset(result.as_incomplete_on),
    )


@given(info_strategy, info_strategy)
@settings(max_examples=100, deadline=None)
def test_exe_info_merge_commutative(a, b):
    assert _merged(a, b) == _merged(b, a)


@given(info_strategy, info_strategy, info_strategy)
@settings(max_examples=100, deadline=None)
def test_exe_info_merge_associative(a, b, c):
    ab = a.snapshot()
    ab.merge(b.snapshot())
    left = _merged(ab, c)
    bc = b.snapshot()
    bc.merge(c.snapshot())
    right = _merged(a, bc)
    assert left == right


# ---------------------------------------------------------------------------
# end-to-end: random mixed workloads conserve money and stay serializable
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.integers(0, 4),  # from account
            st.integers(0, 4),  # to account
            st.booleans(),      # PACT?
        ),
        min_size=1,
        max_size=12,
    ),
    st.integers(0, 2**16),
)
@settings(max_examples=25, deadline=None)
def test_random_hybrid_workload_conserves_money(transfers, seed):
    from repro import TransactionAbortedError
    from repro.sim import gather, spawn
    from tests.conftest import build_system

    system = build_system(seed=seed)

    async def one(frm, to, use_pact):
        if frm == to:
            return "skipped"
        try:
            if use_pact:
                await system.submit_pact(
                    "account", frm, "transfer", (1.0, to),
                    access={frm: 1, to: 1},
                )
            else:
                await system.submit_act("account", frm, "transfer", (1.0, to))
            return "committed"
        except TransactionAbortedError as exc:
            return exc.reason

    async def main():
        outcomes = await gather(
            *[spawn(one(f, t, p)) for f, t, p in transfers]
        )
        balances = [
            await system.submit_act("account", k, "balance") for k in range(5)
        ]
        return outcomes, balances

    outcomes, balances = system.run(main())
    assert sum(balances) == pytest.approx(500.0)
    pact_outcomes = [
        o for (f, t, p), o in zip(transfers, outcomes) if p and f != t
    ]
    # PACTs abort only through user logic or cascades, never conflicts
    for outcome in pact_outcomes:
        assert outcome in ("committed", "user_abort", "cascading")
