"""Chaos oracle: classification, tamper detection, and the 2PC windows.

The crash-window tests pin a silo crash to an exact protocol point with
a ``crash_on_record`` fault — right after the 2PC coordinator's prepare
record (the presumed-abort window, §4.3.4) and right after its commit
record (the decision is durable) — then prove through the oracle that
recovery lands on the correct side of the decision in each case.
"""

import pytest

from repro.actors.ref import ActorId
from repro.actors.runtime import SiloConfig
from repro.chaos.injector import ChaosInjector
from repro.chaos.oracle import classify, recovered_states, verify
from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec
from repro.chaos.workload import (
    CHAOS_ACCOUNT_KIND,
    INITIAL_BALANCE,
    ChaosAccountActor,
    ChaosOutcome,
)
from repro.core.config import SnapperConfig
from repro.core.system import SnapperSystem
from repro.errors import AbortReason
from repro.persistence.records import (
    ActCommitRecord,
    CoordCommitRecord,
    CoordPrepareRecord,
)


# ---------------------------------------------------------------------------
# outcome classification (the Jepsen convention)
# ---------------------------------------------------------------------------

def _outcome(mode, status, reason=None):
    return ChaosOutcome(marker="m", mode=mode, source=0, destinations=(1,),
                        amount=1.0, status=status, reason=reason)


def test_classify_committed():
    assert classify(_outcome("act", "committed")) == "committed"


def test_classify_definite_aborts():
    assert classify(_outcome(
        "pact", "aborted:user_abort", AbortReason.USER_ABORT,
    )) == "definite_abort"
    assert classify(_outcome(
        "act", "aborted:act_conflict", AbortReason.ACT_CONFLICT,
    )) == "definite_abort"
    assert classify(_outcome(
        "act", "aborted:cascading", AbortReason.CASCADING,
    )) == "definite_abort"


def test_classify_in_doubt():
    # a cascaded PACT can be resurrected by the recovery commit rule
    assert classify(_outcome(
        "pact", "aborted:cascading", AbortReason.CASCADING,
    )) == "in_doubt"
    assert classify(_outcome("act", "failure:ActorCrashedError")) == "in_doubt"
    assert classify(_outcome("pact", "unknown")) == "in_doubt"


# ---------------------------------------------------------------------------
# tamper detection: the oracle must actually catch violations
# ---------------------------------------------------------------------------

def _states(**markers_by_key):
    """Two-actor deployment states with the given applied markers."""
    states = {}
    for key in (0, 1):
        applied = dict(markers_by_key.get(f"a{key}", {}))
        states[key] = {
            "balance": INITIAL_BALANCE + sum(applied.values()),
            "applied": applied,
        }
    return states


def test_oracle_passes_a_consistent_deployment():
    outcome = _outcome("act", "committed")
    states = _states(a0={"m": -1.0}, a1={"m": 1.0})
    assert verify(states, [outcome]).ok


def test_oracle_catches_lost_committed_write():
    outcome = _outcome("act", "committed")
    states = _states(a0={"m": -1.0})  # missing on actor 1
    report = verify(states, [outcome])
    assert not report.ok
    assert not report.check("C1 committed-durable").ok
    assert not report.check("C3 atomicity").ok


def test_oracle_catches_surviving_definite_abort():
    outcome = _outcome("act", "aborted:act_conflict", AbortReason.ACT_CONFLICT)
    states = _states(a0={"m": -1.0}, a1={"m": 1.0})
    report = verify(states, [outcome])
    assert not report.check("C2 aborts-not-durable").ok


def test_oracle_catches_conservation_drift():
    states = _states()
    states[0]["balance"] += 3.0  # money out of thin air
    report = verify(states, [])
    assert not report.check("C4 conservation").ok
    assert not report.check("C5 internal-consistency").ok


def test_oracle_allows_in_doubt_either_way_but_not_partially():
    outcome = _outcome("pact", "failure:ActorCrashedError")
    assert verify(_states(a0={"m": -1.0}, a1={"m": 1.0}), [outcome]).ok
    assert verify(_states(), [outcome]).ok
    partial = verify(_states(a0={"m": -1.0}), [outcome])
    assert not partial.check("C3 atomicity").ok


# ---------------------------------------------------------------------------
# crash windows around the 2PC decision point
# ---------------------------------------------------------------------------

def _run_act_with_crash_on(record_kind):
    """Run one cross-actor ACT; crash the silo (taking the 2PC
    coordinator — the first actor — with it) right after ``record_kind``
    becomes durable; let the injector recover; return the system and the
    client-observed outcome."""
    plan = FaultPlan(seed=1, duration=1.0, faults=[
        FaultSpec(at=0.0, kind=FaultKind.CRASH_ON_RECORD,
                  target=record_kind, arg=1),
    ])
    system = SnapperSystem(
        config=SnapperConfig(num_coordinators=2, num_loggers=2),
        silo=SiloConfig(seed=plan.seed),
        seed=plan.seed,
    )
    system.register_actor(CHAOS_ACCOUNT_KIND, ChaosAccountActor)
    injector = ChaosInjector(system, plan)
    system.start()
    injector.attach()

    outcome = ChaosOutcome(marker="m-2pc", mode="act", source=0,
                           destinations=(1,), amount=5.0)

    async def client():
        try:
            await system.submit_act(
                CHAOS_ACCOUNT_KIND, 0, "chaos_transfer",
                ("m-2pc", 5.0, (1,)),
            )
        except Exception as exc:  # noqa: BLE001 - crash observed
            outcome.status = f"failure:{type(exc).__name__}"
        else:
            outcome.status = "committed"

    system.loop.create_task(client(), label="client")
    system.loop.run(until=1.0)
    injector.detach()
    assert injector.stats["record_triggers"] == 1, (
        f"the crash never hit its {record_kind} window"
    )
    assert injector.stats["silo_crashes"] == 1
    assert injector.stats["recoveries"] == 1
    return system, outcome


def test_coordinator_crash_mid_2pc_is_presumed_abort():
    """Kill the silo right after the 2PC coordinator logged its prepare
    record but before any commit record (§4.3.4): the in-doubt ACT must
    resolve to presumed abort — durable nowhere — and the oracle must
    agree."""
    system, outcome = _run_act_with_crash_on("CoordPrepareRecord")
    records = list(system.loggers.all_records())
    tids = [r.tid for r in records if isinstance(r, CoordPrepareRecord)]
    assert tids, "the ACT never reached its prepare record"
    # the crash landed inside the in-doubt window: prepared, not decided
    assert not any(isinstance(r, (CoordCommitRecord, ActCommitRecord))
                   for r in records)
    assert outcome.status.startswith("failure")
    assert classify(outcome) == "in_doubt"

    states = {
        aid.key: state
        for aid, state in recovered_states(
            system.loggers,
            [ActorId(CHAOS_ACCOUNT_KIND, key) for key in (0, 1)],
        ).items()
    }
    # presumed abort: the marker survived on *no* actor, balances intact
    for key, state in states.items():
        assert "m-2pc" not in state["applied"], f"marker survived on {key}"
        assert state["balance"] == INITIAL_BALANCE
    report = verify(states, [outcome])
    assert report.ok, report.render()


def test_crash_after_commit_record_preserves_the_act():
    """Same window, other side of the decision: the coordinator's commit
    record is durable, so recovery must keep the ACT's effects on every
    participant even though the client only saw the crash."""
    system, outcome = _run_act_with_crash_on("CoordCommitRecord")
    states = {
        aid.key: state
        for aid, state in recovered_states(
            system.loggers,
            [ActorId(CHAOS_ACCOUNT_KIND, key) for key in (0, 1)],
        ).items()
    }
    assert states[0]["applied"].get("m-2pc") == pytest.approx(-5.0)
    assert states[1]["applied"].get("m-2pc") == pytest.approx(5.0)
    # the decision is durable: audit it as committed and the oracle
    # must hold C1 (committed-durable) on every touched actor
    outcome.status = "committed"
    report = verify(states, [outcome])
    assert report.ok, report.render()
