"""ChaosInjector and ChaosLogStorage: fault mechanics and determinism."""

import pytest

from repro.chaos.harness import ChaosHarness
from repro.chaos.injector import ChaosInjector, ChaosLogStorage
from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec
from repro.chaos.workload import CHAOS_ACCOUNT_KIND, ChaosAccountActor
from repro.core.config import SnapperConfig
from repro.core.system import SnapperSystem
from repro.persistence.records import BatchCommitRecord
from repro.persistence.wal import InMemoryLogStorage


# ---------------------------------------------------------------------------
# ChaosLogStorage
# ---------------------------------------------------------------------------

def _record(bid, lsn):
    record = BatchCommitRecord(bid=bid)
    object.__setattr__(record, "lsn", lsn)
    return record


def test_armed_fail_rejects_one_append():
    storage = ChaosLogStorage(InMemoryLogStorage())
    storage.arm("fail")
    with pytest.raises(IOError):
        storage.append(_record(1, 0))
    assert storage.appends_failed == 1
    assert list(storage.scan()) == []  # nothing reached the device
    storage.append(_record(2, 1))  # one-shot: the next append succeeds
    assert [r.bid for r in storage.scan()] == [2]


def test_armed_torn_append_stores_but_hides_the_record():
    """A torn write: the caller sees a failure, and although bytes hit
    the device, recovery must never see the record."""
    storage = ChaosLogStorage(InMemoryLogStorage())
    storage.arm("torn")
    with pytest.raises(IOError):
        storage.append(_record(1, 0))
    assert storage.appends_torn == 1
    assert len(storage.inner) == 1  # stored...
    assert list(storage.scan()) == []  # ...but never scanned
    assert len(storage) == 0


def test_exclude_lsn_drops_records_retroactively():
    storage = ChaosLogStorage(InMemoryLogStorage())
    storage.append(_record(1, 10))
    storage.append(_record(2, 11))
    storage.exclude_lsn(10)
    assert [r.bid for r in storage.scan()] == [2]


def test_unknown_arm_mode_rejected():
    with pytest.raises(ValueError):
        ChaosLogStorage(InMemoryLogStorage()).arm("explode")


# ---------------------------------------------------------------------------
# ChaosInjector fault dispatch
# ---------------------------------------------------------------------------

def _system(plan):
    system = SnapperSystem(config=SnapperConfig(), seed=plan.seed)
    system.register_actor(CHAOS_ACCOUNT_KIND, ChaosAccountActor)
    return system


def test_message_faults_arm_the_interceptor_once():
    plan = FaultPlan(seed=0, duration=1.0, faults=[])
    system = _system(plan)
    injector = ChaosInjector(system, plan)
    injector.attach()
    injector._fire(FaultSpec(0.0, FaultKind.MSG_DROP, target="act_prepare",
                             arg=0.01))
    target = system.actor(CHAOS_ACCOUNT_KIND, 0).id
    assert injector._intercept(target, "act_prepare", 0.0) == ("drop", 0.01)
    # one-shot: consumed by the first matching message
    assert injector._intercept(target, "act_prepare", 0.0) is None
    # non-matching methods pass through untouched
    injector._fire(FaultSpec(0.0, FaultKind.MSG_DELAY,
                             target="batch_committed", arg=0.02))
    assert injector._intercept(target, "act_prepare", 0.0) is None
    assert injector._intercept(target, "batch_committed", 0.0) == \
        ("delay", 0.02)


def test_actor_crash_fault_kills_and_system_recovers():
    plan = FaultPlan(seed=0, duration=0.5, faults=[
        FaultSpec(at=0.1, kind=FaultKind.ACTOR_CRASH, target=0),
    ])
    system = _system(plan)
    injector = ChaosInjector(system, plan)
    system.start()
    injector.attach()

    async def main():
        # commit something so the crash has durable state to recover
        await system.submit_pact(
            CHAOS_ACCOUNT_KIND, 0, "chaos_transfer", ("m0", 2.0, (1,)),
            access={0: 1, 1: 1},
        )
        from repro.sim.loop import sleep
        await sleep(0.2)  # let the scheduled crash fire
        # the next access transparently reactivates from the WAL
        return await system.submit_act(CHAOS_ACCOUNT_KIND, 0, "probe")

    balance = system.run(main())
    assert injector.stats["actor_crashes"] == 1
    assert balance == 998.0  # 1000 - 2.0, recovered across the crash


def test_wal_fault_targets_armed_storage():
    plan = FaultPlan(seed=0, duration=1.0, faults=[])
    system = _system(plan)
    injector = ChaosInjector(system, plan)
    injector.attach()
    injector._fire(FaultSpec(0.0, FaultKind.WAL_FAIL, target=1))
    armed = [s for s in injector.storages if s._armed == "fail"]
    assert len(armed) == 1
    injector.detach()  # detach disarms without removing the wrappers
    assert all(s._armed is None for s in injector.storages)
    assert all(isinstance(logger.wal.storage, ChaosLogStorage)
               for logger in system.loggers.loggers)


# ---------------------------------------------------------------------------
# end-to-end determinism: the acceptance property
# ---------------------------------------------------------------------------

def test_same_plan_same_run_bit_for_bit():
    """Two consecutive runs of the same seeded plan must produce the
    identical report — fault schedule, outcome tallies, message
    statistics, and oracle verdicts."""
    plan = FaultPlan.generate(2, duration=0.4)
    first = ChaosHarness(plan).run()
    second = ChaosHarness(plan).run()
    assert first.to_dict() == second.to_dict()
    assert first.ok, first.render()
