"""Fixture: SNAP016 — a computed key in a PACT access dict.

The declared actor is the result of an expression evaluated at
submission time; neither ``python -m repro.analysis verify`` nor a
reader of the call site can tell which actor the declaration covers.
Literals, plain names, and all-constant ``ActorId(...)`` keys stay
checkable and are not flagged.
"""

from repro.api import TxnRequest


def build_request(layout, key):
    return TxnRequest.pact(
        "account", key, "transfer", (10.0, key + 1),
        access={key: 1, layout.partition(key + 1): 1},
    )
