"""Fixture: SNAP007 — environment / I-O reads inside a transaction body."""

import os


class ConfigActor:
    async def reload(self, ctx, _input=None):
        state = await self.get_state(ctx)
        state["region"] = os.getenv("REGION", "us-east-1")
        state["home"] = os.environ["HOME"]
        return state["region"]
