"""Fixture: SNAP002 — the transaction body calls an undeclared actor."""

from repro.api import TxnRequest


class FakeFuncCall:
    def __init__(self, method, func_input=None):
        self.method = method
        self.func_input = func_input


class TransferActor:
    async def transfer(self, ctx, txn_input):
        await self.call_actor(
            ctx, "carol", FakeFuncCall("deposit", 1.0)
        )
        return None


async def submit(system):
    return await system.submit_pact(  # snapper: noqa SNAP015
        "account", "alice", "transfer", None,
        access={"alice": 1, "bob": 1},
    )


def build_request():
    # the TxnRequest surface is checked the same way
    return TxnRequest.pact(
        "account", "alice", "transfer",
        access={"alice": 1, "bob": 1},
    )
