"""SNAP015: calling the deprecated submission shims directly.

This module pretends to be application code still driving the system
through ``submit_pact`` / ``submit_act``.  The supported surface is
``submit(TxnRequest.pact(...))`` / ``submit(TxnRequest.act(...))``,
which returns a :class:`TxnHandle`; the shims remain only for repro
internals.
"""


async def transfer(system):
    return await system.submit_pact(
        "account", 0, "transfer", {"to": 1, "amount": 5},
        {0: 1, 1: 1},
    )


async def audit(system):
    return await system.submit_act("account", 0, "balance", None)
