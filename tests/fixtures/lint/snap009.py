"""Fixture: SNAP009 — awaiting while holding an ActorLock."""


class ManualLockActor:
    async def critical(self, ctx, _input=None):
        await self._lock.acquire(ctx.tid, "ReadWrite")
        await self.charge(0.001)  # suspended while holding the lock
        self._lock.release(ctx.tid)
        return "done"
