"""Fixture: violations silenced with ``# snapper: noqa`` comments."""

import random
import time
import uuid


class SuppressedActor:
    async def stamp(self, ctx, _input=None):
        state = await self.get_state(ctx)
        state["at"] = time.time()  # snapper: noqa SNAP003
        state["id"] = str(uuid.uuid4())  # snapper: noqa
        state["lucky"] = random.random()  # snapper: noqa SNAP004, SNAP003
        return state
