"""Fixture: SNAP011 — mutating state obtained with AccessMode.READ.

This is the shape of a real bug once present in the TPC-C item actor:
a READ-mode access whose returned blob was then used as a write-through
cache.
"""

from repro.core.context import AccessMode


class ItemActor:
    async def read_items(self, ctx, i_ids):
        state = await self.get_state(ctx, AccessMode.READ)
        prices = state["prices"]
        result = {}
        for i_id in i_ids:
            if i_id not in prices:
                prices[i_id] = 1.0  # write under READ access
            result[i_id] = prices[i_id]
        return result
