"""Fixture: SNAP013 — malformed obs instrument declarations."""


def attach(obs):
    bad_name = obs.counter(
        "messages_total", "missing the snapper_ prefix"
    )
    bad_counter = obs.counter(
        "snapper_runtime_sends_count", "counters must end in _total"
    )
    bucketless = obs.histogram(
        "snapper_act_lock_wait_seconds", "no explicit buckets"
    )
    unsorted = obs.histogram(
        "snapper_wal_flush_batch_count", "buckets out of order",
        buckets=(8, 4, 2, 1),
    )
    return bad_name, bad_counter, bucketless, unsorted
