"""Fixture: SNAP006 — iteration over a set inside a transaction body."""


class FanoutActor:
    async def settle(self, ctx, keys):
        state = await self.get_state(ctx)
        for key in set(keys):
            state[key] = 0.0
        total = sum(state[k] for k in {"a", "b"})
        return total
