"""Fixture: idiomatic Snapper actor code that must lint clean.

Exercises the patterns the rules must NOT flag: ReadWrite mutation
through the get_state handle, fire-and-forget ActorRef.call futures,
spawned coroutines, seeded randomness outside transaction bodies, the
sim clock, sorted iteration over set-shaped data, and substrate access
through the runtime seam (never ``repro.sim`` directly — SNAP014).
"""

import random

from repro.core.context import AccessMode, FuncCall
from repro.runtime.kernel import gather, spawn


class AccountActor:
    async def balance(self, ctx, _input=None):
        state = await self.get_state(ctx, AccessMode.READ)
        return state["balance"]

    async def deposit(self, ctx, money):
        state = await self.get_state(ctx, AccessMode.READ_WRITE)
        state["balance"] += money
        state["entry_d"] = self.sim_now
        return state["balance"]

    async def multi_transfer(self, ctx, txn_input):
        money, to_keys = txn_input
        state = await self.get_state(ctx, AccessMode.READ_WRITE)
        state["balance"] -= money * len(to_keys)
        await gather(*[
            spawn(self.call_actor(
                ctx, self.ref("account", key).id,
                FuncCall("deposit", money),
            ))
            for key in sorted(set(to_keys))
        ])
        return state["balance"]


class Workload:
    """Generators are not transaction bodies: seeded RNG is fine here."""

    def __init__(self, seed=0):
        self.rng = random.Random(seed)

    def next_amount(self):
        return self.rng.uniform(1.0, 10.0)


async def submit(system):
    from repro.api import TxnRequest

    handle = system.submit(TxnRequest.pact(
        "account", "alice", "multi_transfer", (1.0, ["bob"]),
        access={"alice": 1, "bob": 1},
    ))
    return await handle


def attach_obs(obs, ladder):
    """Well-formed instrument declarations must not trip SNAP013."""
    sends = obs.counter(
        "snapper_runtime_messages_total", "by method",
        labelnames=("method",),
    )
    depth = obs.gauge("snapper_runtime_mailbox_depth_count")
    waits = obs.histogram(
        "snapper_act_lock_wait_seconds", "lock wait",
        buckets=(0.001, 0.01, 0.1, 1.0),
    )
    shared = obs.histogram(
        "snapper_hybrid_pact_turn_wait_seconds", "turn wait",
        buckets=ladder,  # computed bounds: nothing provable statically
    )
    return sends, depth, waits, shared
