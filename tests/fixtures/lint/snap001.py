"""Fixture: SNAP001 — actorAccessInfo omits the start actor."""


async def submit(system):
    return await system.submit_pact(  # snapper: noqa SNAP015
        "account", "alice", "transfer", (10.0, "bob"),
        access={"bob": 1},
    )
