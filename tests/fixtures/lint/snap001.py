"""Fixture: SNAP001 — actorAccessInfo omits the start actor."""

from repro.api import TxnRequest


async def submit(system):
    return await system.submit_pact(  # snapper: noqa SNAP015
        "account", "alice", "transfer", (10.0, "bob"),
        access={"bob": 1},
    )


def build_request():
    # the TxnRequest surface is checked the same way
    return TxnRequest.pact(
        "account", "alice", "transfer", (10.0, "bob"),
        access={"bob": 1},
    )
