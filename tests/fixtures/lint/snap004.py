"""Fixture: SNAP004 — global / unseeded randomness in a transaction body."""

import random


class LotteryActor:
    async def draw(self, ctx, _input=None):
        state = await self.get_state(ctx)
        state["winner"] = random.randint(0, 99)
        return state["winner"]

    async def draw_unseeded(self, ctx, _input=None):
        rng = random.Random()
        return rng.random()
