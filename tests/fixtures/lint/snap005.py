"""Fixture: SNAP005 — uuid generation inside a transaction body."""

import uuid


class OrderActor:
    async def insert(self, ctx, order):
        state = await self.get_state(ctx)
        order_id = str(uuid.uuid4())
        state[order_id] = order
        return order_id
