"""Fixture: SNAP012 — blocking call inside an async actor method."""

import time


class SlowActor:
    async def throttle(self, ctx, _input=None):
        time.sleep(0.1)  # blocks the whole event loop
        return "done"
