"""Fixture: SNAP003 — wall-clock read inside a transaction body."""

import time


class ClockActor:
    async def stamp(self, ctx, _input=None):
        state = await self.get_state(ctx)
        state["stamped_at"] = time.time()
        return state["stamped_at"]
