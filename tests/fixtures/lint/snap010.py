"""Fixture: SNAP010 — direct self._state assignment in a transaction body."""


class BalanceActor:
    async def deposit(self, ctx, money):
        balance = await self.get_state(ctx)
        self._state = balance + money
        return self._state
