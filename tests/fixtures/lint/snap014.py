"""SNAP014: importing sim-kernel internals outside the runtime seam.

This module pretends to be engine-layer code reaching straight into
``repro.sim`` — it would run on the DES backend and break on every
other substrate.  The sanctioned route is ``repro.runtime.kernel`` (or
a backend handle).
"""

from repro.sim import gather, spawn  # direct seam violation
from repro.sim.loop import SimLoop


def build_loop():
    return SimLoop(seed=0)


async def fan_out(coros):
    import repro.sim.future  # local imports violate the seam too

    futures = [spawn(c) for c in coros]
    return await gather(*futures)
