"""Fixture: SNAP008 — a coroutine is created but never awaited."""


class AuditActor:
    async def deposit(self, ctx, money):
        state = await self.get_state(ctx)
        state["balance"] += money
        self.audit(ctx, money)  # coroutine silently dropped
        return state["balance"]

    async def audit(self, ctx, money):
        state = await self.get_state(ctx)
        state["audit_log"].append(money)
