"""Edge-case tests for the actor runtime and simulation kernel."""

import pytest

from repro import sim
from repro.actors import Actor, ActorRuntime, SiloConfig
from repro.errors import ActorCrashedError, SimulationError
from repro.sim import SimLoop, gather, spawn


class Failing(Actor):
    """Actor whose activation hook explodes."""

    async def on_activate(self):
        raise RuntimeError("cannot activate")

    async def anything(self):
        return "never"


class Counter(Actor):
    reentrant = True

    def __init__(self):
        self.value = 0

    async def increment(self, by=1):
        self.value += by
        return self.value


def test_failed_activation_fails_queued_requests():
    loop = SimLoop()
    runtime = ActorRuntime(loop, SiloConfig(net_jitter=0.0))
    runtime.register("failing", Failing)

    async def main():
        ref = runtime.ref("failing", 1)
        futures = [ref.call("anything") for _ in range(3)]
        for fut in futures:
            with pytest.raises(ActorCrashedError, match="failed to activate"):
                await fut
        assert not runtime.is_active(ref.id)

    loop.run_until_complete(main())


def test_reactivation_after_failed_activation():
    """A kind can recover if its factory stops failing (config fix)."""
    loop = SimLoop()
    runtime = ActorRuntime(loop, SiloConfig(net_jitter=0.0))
    attempts = []

    class Flaky(Counter):
        async def on_activate(self):
            attempts.append(1)
            if len(attempts) == 1:
                raise RuntimeError("first activation fails")

    runtime.register("flaky", Flaky)

    async def main():
        ref = runtime.ref("flaky", 1)
        with pytest.raises(ActorCrashedError):
            await ref.call("increment")
        return await ref.call("increment")

    assert loop.run_until_complete(main()) == 1
    assert len(attempts) == 2


def test_deactivate_then_call_reactivates():
    loop = SimLoop()
    runtime = ActorRuntime(loop, SiloConfig(net_jitter=0.0))
    runtime.register("counter", Counter)

    async def main():
        ref = runtime.ref("counter", 1)
        await ref.call("increment", 5)
        runtime.deactivate(ref.id)
        assert not runtime.is_active(ref.id)
        return await ref.call("increment", 1)  # fresh state

    assert loop.run_until_complete(main()) == 1


def test_idle_deactivation_skips_busy_actor():
    loop = SimLoop()
    runtime = ActorRuntime(
        loop, SiloConfig(net_jitter=0.0, idle_deactivate_after=0.01)
    )

    class Busy(Actor):
        reentrant = True

        async def long_turn(self):
            await sim.sleep(0.05)  # longer than the idle timeout
            return "done"

    runtime.register("busy", Busy)

    async def main():
        ref = runtime.ref("busy", 1)
        result = await ref.call("long_turn")
        assert result == "done"
        # it stayed active through the whole long turn
        await sim.sleep(0.05)
        return runtime.is_active(ref.id)

    assert loop.run_until_complete(main()) is False  # idles out afterwards


def test_kill_nonexistent_actor_returns_false():
    loop = SimLoop()
    runtime = ActorRuntime(loop, SiloConfig())
    runtime.register("counter", Counter)
    from repro.actors.ref import ActorId

    assert runtime.kill(ActorId("counter", "ghost")) is False


def test_max_events_budget_guards_livelock():
    loop = SimLoop()

    def reschedule():
        loop.call_later(0.0, reschedule)

    loop.call_later(0.0, reschedule)
    with pytest.raises(SimulationError, match="event budget"):
        loop.run(max_events=1000)


def test_negative_sleep_rejected():
    loop = SimLoop()

    async def main():
        await sim.sleep(-1)

    with pytest.raises(SimulationError, match="negative sleep"):
        loop.run_until_complete(main())


def test_actor_self_call_through_rpc():
    """A reentrant actor may RPC itself (used for multi-access PACTs)."""
    loop = SimLoop()
    runtime = ActorRuntime(loop, SiloConfig(net_jitter=0.0))

    class SelfCaller(Actor):
        reentrant = True

        async def outer(self):
            inner = await self.self_ref().call("inner")
            return f"outer({inner})"

        async def inner(self):
            return "inner"

    runtime.register("selfcaller", SelfCaller)

    async def main():
        return await runtime.ref("selfcaller", 1).call("outer")

    assert loop.run_until_complete(main()) == "outer(inner)"


def test_non_reentrant_self_call_deadlocks_detectably():
    """The classic anti-pattern: a non-reentrant actor calling itself
    never completes (caught by run_until_complete's deadlock report)."""
    loop = SimLoop()
    runtime = ActorRuntime(loop, SiloConfig(net_jitter=0.0))

    class Stuck(Actor):
        reentrant = False

        async def outer(self):
            return await self.self_ref().call("inner")

        async def inner(self):
            return "inner"

    runtime.register("stuck", Stuck)

    async def main():
        return await runtime.ref("stuck", 1).call("outer")

    with pytest.raises(SimulationError, match="pending"):
        loop.run_until_complete(main(), until=1.0)


def test_gather_of_nothing():
    loop = SimLoop()

    async def main():
        return await gather()

    assert loop.run_until_complete(main()) == []


def test_spawn_inherits_silo_tag():
    loop = SimLoop()
    runtime = ActorRuntime(loop, SiloConfig(num_silos=4, net_jitter=0.0))
    observed = []

    class Tagged(Actor):
        reentrant = True

        async def work(self):
            async def child():
                observed.append(loop.current_task.silo)

            await spawn(child())

    runtime.register("tagged", Tagged)

    async def main():
        ref = runtime.ref("tagged", "k")
        await ref.call("work")

    loop.run_until_complete(main())
    assert observed == [runtime.silo_of(runtime.ref("tagged", "k").id)]
