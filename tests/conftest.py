"""Shared fixtures: a SmallBank-style account actor and system builders."""

import pytest

from repro import (
    AccessMode,
    FuncCall,
    SnapperConfig,
    SnapperSystem,
    TransactionalActor,
)
from repro.actors.runtime import SiloConfig


class AccountActor(TransactionalActor):
    """The paper's Fig. 2 account actor: state is a float balance."""

    def initial_state(self):
        return 100.0

    async def balance(self, ctx, _input=None):
        return await self.get_state(ctx, AccessMode.READ)

    async def deposit(self, ctx, money):
        state = await self.get_state(ctx, AccessMode.READ_WRITE)
        self._state = state + money
        return self._state

    async def withdraw(self, ctx, money):
        state = await self.get_state(ctx, AccessMode.READ_WRITE)
        if state < money:
            raise ValueError("balance insufficient")
        self._state = state - money
        return self._state

    async def transfer(self, ctx, txn_input):
        """Withdraw locally, deposit to another account (Fig. 2)."""
        money, to_key = txn_input
        balance = await self.withdraw(ctx, money)
        await self.call_actor(
            ctx, self.ref("account", to_key).id, FuncCall("deposit", money)
        )
        return balance

    async def multi_transfer(self, ctx, txn_input):
        """Withdraw locally, deposit to several accounts in parallel (§5.1.1)."""
        money, to_keys = txn_input
        balance = await self.withdraw(ctx, money * len(to_keys))
        from repro.sim import gather, spawn

        await gather(
            *[
                spawn(
                    self.call_actor(
                        ctx,
                        self.ref("account", key).id,
                        FuncCall("deposit", money),
                    )
                )
                for key in to_keys
            ]
        )
        return balance

    async def noop(self, ctx, _input=None):
        return "ok"


def build_system(seed=0, **config_kwargs):
    silo_kwargs = config_kwargs.pop("silo", {})
    system = SnapperSystem(
        config=SnapperConfig(**config_kwargs),
        silo=SiloConfig(**silo_kwargs),
        seed=seed,
    )
    system.register_actor("account", AccountActor)
    system.start()
    return system


@pytest.fixture
def system():
    return build_system()
