"""Runtime access-set sanitizer (``sanitize_access_sets=True``).

Differential tests: every injected violation — undeclared actor, count
overflow, mode downgrade — must abort with
``AbortReason.ACCESS_VIOLATION`` and produce *identical*
:class:`AccessViolation.evidence` on the sim and asyncio backends.
The deliberately wrong declarations below carry bare ``# snapper:
noqa`` so the static ``accessflow verify`` pass (which flags exactly
these sites) stays clean repo-wide.
"""

import pytest

from repro import (
    AbortReason,
    AccessMode,
    FuncCall,
    SnapperConfig,
    SnapperSystem,
    TransactionAbortedError,
    TransactionalActor,
)
from repro.actors.ref import ActorId
from repro.api import TxnRequest
from repro.core.engine.sanitizer import (
    COUNT_OVERFLOW,
    MODE_DOWNGRADE,
    UNDECLARED_ACTOR,
)

BACKENDS = ("sim", "asyncio")


class SanAccount(TransactionalActor):
    def initial_state(self):
        return 100.0

    async def balance(self, ctx, _input=None):
        return await self.get_state(ctx, AccessMode.READ)

    async def deposit(self, ctx, money):
        state = await self.get_state(ctx, AccessMode.READ_WRITE)
        self._state = state + money
        return self._state

    async def transfer(self, ctx, txn_input):
        money, to_key = txn_input
        state = await self.get_state(ctx, AccessMode.READ_WRITE)
        self._state = state - money
        await self.call_actor(
            ctx, self.ref("acct", to_key).id, FuncCall("deposit", money)
        )
        return self._state

    async def pay_twice(self, ctx, txn_input):
        money, to_key = txn_input
        await self.get_state(ctx, AccessMode.READ)
        target = self.ref("acct", to_key).id
        await self.call_actor(ctx, target, FuncCall("deposit", money))
        await self.call_actor(ctx, target, FuncCall("deposit", money))
        return "done"

    async def fan_out(self, ctx, txn_input):
        """Spawned (fire-and-forget-style) child invocations."""
        money, to_keys = txn_input
        state = await self.get_state(ctx, AccessMode.READ_WRITE)
        self._state = state - money * len(to_keys)
        from repro.runtime.kernel import gather, spawn

        await gather(
            *[
                spawn(
                    self.call_actor(
                        ctx,
                        self.ref("acct", key).id,
                        FuncCall("deposit", money),
                    )
                )
                for key in to_keys
            ]
        )
        return self._state


def make_system(backend, sanitize=True, seed=11):
    system = SnapperSystem(
        config=SnapperConfig(
            runtime_backend=backend, sanitize_access_sets=sanitize
        ),
        seed=seed,
    )
    system.register_actor("acct", SanAccount)
    system.start()
    return system


async def read_balance(system, key):
    return await system.submit(
        TxnRequest.pact("acct", key, "balance", access={key: "r"})
    )


def run_violation(system, request):
    """Submit ``request``; return the abort reason, then drain cleanly."""

    async def main():
        with pytest.raises(TransactionAbortedError) as excinfo:
            await system.submit(request)
        # a clean follow-up PACT drains the aborted batch's wake-ups
        await read_balance(system, 1)
        return excinfo.value.reason

    return system.run(main())


# -- clean paths --------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_correct_declarations_commit(backend):
    system = make_system(backend)

    async def main():
        out = await system.submit(TxnRequest.pact(
            "acct", 1, "transfer", (30.0, 2), access={1: 1, 2: 1}
        ))
        return out, await read_balance(system, 2)

    assert system.run(main()) == (70.0, 130.0)
    assert system.sanitizer.violations == []


@pytest.mark.parametrize("backend", BACKENDS)
def test_read_declaration_commits_readonly_body(backend):
    system = make_system(backend)
    assert system.run(read_balance(system, 5)) == 100.0
    assert system.sanitizer.violations == []


def test_sanitizer_off_is_inert():
    system = make_system("sim", sanitize=False)
    assert system.sanitizer is None

    async def main():
        return await system.submit(TxnRequest.pact(
            "acct", 1, "transfer", (30.0, 2), access={1: 1, 2: 1}
        ))

    assert system.run(main()) == 70.0


# -- violations, per backend --------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_undeclared_call_target_aborts(backend):
    system = make_system(backend)
    reason = run_violation(
        system,
        TxnRequest.pact(  # snapper: noqa
            "acct", 1, "transfer", (30.0, 2), access={1: 1}
        ),
    )
    assert reason == AbortReason.ACCESS_VIOLATION
    (violation,) = system.sanitizer.violations
    assert violation.kind == UNDECLARED_ACTOR
    assert violation.actor == ActorId("acct", 2)
    assert violation.declared is None


@pytest.mark.parametrize("backend", BACKENDS)
def test_count_overflow_aborts(backend):
    system = make_system(backend)
    reason = run_violation(
        system,
        TxnRequest.pact(  # snapper: noqa
            "acct", 1, "pay_twice", (5.0, 2), access={1: 1, 2: 1}
        ),
    )
    assert reason in (
        AbortReason.ACCESS_VIOLATION,
        AbortReason.CASCADING,
    )
    (violation,) = system.sanitizer.violations
    assert violation.kind == COUNT_OVERFLOW
    assert violation.actor == ActorId("acct", 2)
    assert violation.declared == (1, AccessMode.READ_WRITE)
    assert violation.observed == "invocation #2"


@pytest.mark.parametrize("backend", BACKENDS)
def test_mode_downgrade_aborts(backend):
    system = make_system(backend)
    reason = run_violation(
        system,
        TxnRequest.pact(  # snapper: noqa
            "acct", 1, "deposit", 5.0, access={1: "r"}
        ),
    )
    assert reason == AbortReason.ACCESS_VIOLATION
    (violation,) = system.sanitizer.violations
    assert violation.kind == MODE_DOWNGRADE
    assert violation.actor == ActorId("acct", 1)
    assert violation.declared == (1, AccessMode.READ)


@pytest.mark.parametrize("backend", BACKENDS)
def test_spawned_violation_cascades_to_root(backend):
    """An undeclared target inside a *spawned* child invocation still
    aborts the root (the sanitizer reports the batch itself)."""
    system = make_system(backend)
    reason = run_violation(
        system,
        TxnRequest.pact(  # snapper: noqa
            "acct", 1, "fan_out", (5.0, [2, 3]), access={1: 1, 2: 1}
        ),
    )
    assert reason in (
        AbortReason.ACCESS_VIOLATION,
        AbortReason.CASCADING,
    )
    kinds = {v.kind for v in system.sanitizer.violations}
    assert kinds == {UNDECLARED_ACTOR}
    assert ActorId("acct", 3) in {
        v.actor for v in system.sanitizer.violations
    }
    # rollback: the root's withdraw was undone with the batch
    assert system.run(read_balance(system, 1)) == 100.0


# -- the differential ---------------------------------------------------------

SCENARIOS = {
    "undeclared-actor": (
        "transfer", (30.0, 2), {1: 1}
    ),
    "count-overflow": (
        "pay_twice", (5.0, 2), {1: 1, 2: 1}
    ),
    "mode-downgrade": (
        "deposit", 5.0, {1: "r"}
    ),
    "spawned-undeclared": (
        "fan_out", (5.0, [2, 3]), {1: 1, 2: 1}
    ),
}


def violation_evidence(backend, scenario):
    method, txn_input, access = SCENARIOS[scenario]
    system = make_system(backend)
    run_violation(
        system,
        TxnRequest.pact(  # snapper: noqa
            "acct", 1, method, txn_input, access=access
        ),
    )
    return [v.evidence for v in system.sanitizer.violations]


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_backends_agree_on_evidence(scenario):
    """The tentpole's differential guarantee: identical verdicts —
    kind, actor, declared (count, mode), observed operation — on the
    deterministic-sim and real-asyncio substrates."""
    per_backend = {
        backend: violation_evidence(backend, scenario)
        for backend in BACKENDS
    }
    assert per_backend["sim"], "scenario must produce a verdict"
    assert per_backend["sim"] == per_backend["asyncio"]
