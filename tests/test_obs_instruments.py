"""repro.obs instruments: registry contract, naming, disabled mode."""

import pytest

from repro.obs.instruments import (
    DISABLED,
    LATENCY_BUCKETS,
    NULL_INSTRUMENT,
    MetricsRegistry,
    registry_from_services,
)


# ---------------------------------------------------------------------------
# counters / gauges / histograms
# ---------------------------------------------------------------------------
def test_counter_counts_and_rejects_negative():
    obs = MetricsRegistry()
    counter = obs.counter("snapper_test_events_total", "help text")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    obs = MetricsRegistry()
    gauge = obs.gauge("snapper_test_depth_count")
    gauge.set(4)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value == 3.0


def test_histogram_buckets_cumulative():
    obs = MetricsRegistry()
    hist = obs.histogram(
        "snapper_test_wait_seconds", buckets=(0.01, 0.1, 1.0)
    )
    for value in (0.005, 0.05, 0.05, 0.5, 5.0):
        hist.observe(value)
    assert hist.count == 5
    assert hist.sum == pytest.approx(5.605)
    child = hist.labels()
    cumulative = child.cumulative()
    assert cumulative == [(0.01, 1), (0.1, 3), (1.0, 4), (float("inf"), 5)]
    # a value exactly on a bound lands in that bound's bucket (le=)
    hist.observe(0.1)
    assert child.cumulative()[1] == (0.1, 4)


def test_histogram_requires_valid_buckets():
    obs = MetricsRegistry()
    with pytest.raises(ValueError):
        obs.histogram("snapper_test_a_seconds", buckets=())
    with pytest.raises(ValueError):
        obs.histogram("snapper_test_b_seconds", buckets=(1.0, 0.5))
    with pytest.raises(ValueError):
        obs.histogram("snapper_test_c_seconds", buckets=(1.0, 1.0))


# ---------------------------------------------------------------------------
# labels
# ---------------------------------------------------------------------------
def test_labels_children_are_independent():
    obs = MetricsRegistry()
    family = obs.counter(
        "snapper_test_calls_total", labelnames=("method",)
    )
    family.labels(method="a").inc()
    family.labels(method="a").inc()
    family.labels(method="b").inc()
    assert obs.value_of("snapper_test_calls_total", method="a") == 2.0
    assert obs.value_of("snapper_test_calls_total", method="b") == 1.0
    assert obs.value_of("snapper_test_calls_total", method="c") == 0.0


def test_labels_wrong_names_raise():
    obs = MetricsRegistry()
    family = obs.counter(
        "snapper_test_calls_total", labelnames=("method",)
    )
    with pytest.raises(ValueError):
        family.labels(nope="x")
    with pytest.raises(ValueError):
        family.labels(method="x", extra="y")
    with pytest.raises(ValueError):
        family.inc()  # bare use of a labelled family


def test_bare_family_resolves_via_labels():
    obs = MetricsRegistry()
    hist = obs.histogram("snapper_test_wait_seconds", buckets=(1.0,))
    child = hist.labels()
    child.observe(0.5)
    assert hist.count == 1


# ---------------------------------------------------------------------------
# registration contract
# ---------------------------------------------------------------------------
def test_reregistration_is_idempotent():
    obs = MetricsRegistry()
    a = obs.counter("snapper_test_events_total", labelnames=("k",))
    b = obs.counter("snapper_test_events_total", labelnames=("k",))
    assert a is b
    assert len(obs) == 1


def test_reregistration_mismatch_raises():
    obs = MetricsRegistry()
    obs.counter("snapper_test_events_total")
    with pytest.raises(ValueError):
        obs.gauge("snapper_test_events_total")
    with pytest.raises(ValueError):
        obs.counter("snapper_test_events_total", labelnames=("k",))


def test_name_convention_enforced():
    obs = MetricsRegistry()
    for bad in (
        "messages_total",            # missing snapper_ prefix
        "snapper_total",             # no component segment
        "snapper_runtime_messages",  # no unit suffix
        "snapper_Runtime_x_total",   # upper case
    ):
        with pytest.raises(ValueError):
            obs.counter(bad)
    with pytest.raises(ValueError):
        obs.counter("snapper_runtime_messages_count")  # counter, no _total
    # _total is counter-only as a suffix, other units fine elsewhere
    obs.gauge("snapper_runtime_mailbox_depth_count")
    obs.histogram("snapper_act_lock_wait_seconds", buckets=LATENCY_BUCKETS)


# ---------------------------------------------------------------------------
# disabled registries
# ---------------------------------------------------------------------------
def test_disabled_registry_registers_nothing():
    obs = MetricsRegistry(enabled=False)
    counter = obs.counter("not even a valid name")
    assert counter is NULL_INSTRUMENT
    counter.labels(anything="goes").inc()
    obs.histogram("snapper_x_y_seconds", buckets=(1,)).observe(2)
    assert len(obs) == 0
    assert obs.snapshot() == {}


def test_registry_from_services():
    live = MetricsRegistry()
    assert registry_from_services({"obs": live}) is live
    assert registry_from_services({}) is DISABLED
    assert registry_from_services({"obs": object()}) is DISABLED
    assert not DISABLED.enabled


# ---------------------------------------------------------------------------
# snapshot
# ---------------------------------------------------------------------------
def test_snapshot_is_deterministic_and_complete():
    obs = MetricsRegistry()
    obs.counter("snapper_b_events_total").inc(2)
    family = obs.counter("snapper_a_calls_total", labelnames=("m",))
    family.labels(m="z").inc()
    family.labels(m="a").inc()
    obs.histogram("snapper_c_wait_seconds", buckets=(1.0,)).observe(0.5)
    snap = obs.snapshot()
    assert list(snap) == sorted(snap)
    series = snap["snapper_a_calls_total"]["series"]
    assert [s["labels"] for s in series] == [{"m": "a"}, {"m": "z"}]
    hist = snap["snapper_c_wait_seconds"]["series"][0]
    assert hist["count"] == 1
    assert hist["buckets"][-1][1] == 1
