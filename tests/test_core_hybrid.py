"""Tests for hybrid PACT+ACT execution (§4.4)."""

import pytest

from repro import AbortReason, TransactionAbortedError
from repro.sim import gather, spawn

from tests.conftest import build_system


def test_mixed_workload_conserves_money():
    system = build_system(seed=5)
    accounts = list(range(8))

    async def one(i, use_pact):
        to = (i + 3) % len(accounts)
        try:
            if use_pact:
                await system.submit_pact(
                    "account", i, "transfer", (5.0, to), access={i: 1, to: 1}
                )
            else:
                await system.submit_act("account", i, "transfer", (5.0, to))
            return "committed"
        except TransactionAbortedError as exc:
            return exc.reason

    async def main():
        outcomes = await gather(
            *[
                spawn(one(i, (i + r) % 2 == 0))
                for i in accounts
                for r in range(4)
            ]
        )
        balances = [
            await system.submit_pact("account", i, "balance", access={i: 1})
            for i in accounts
        ]
        return outcomes, balances

    outcomes, balances = system.run(main())
    assert sum(balances) == pytest.approx(100.0 * len(accounts))
    assert outcomes.count("committed") >= len(accounts)
    # PACTs never abort due to conflicts: any abort must be an ACT reason
    for reason in outcomes:
        assert reason in (
            "committed",
            AbortReason.ACT_CONFLICT,
            AbortReason.HYBRID_DEADLOCK,
            AbortReason.INCOMPLETE_AFTER_SET,
            AbortReason.SERIALIZABILITY,
            AbortReason.CASCADING,
        )
    assert system.controller.cascades == 0


def test_act_between_batches_sees_consistent_state():
    """An ACT reading two actors sees a prefix-consistent snapshot."""
    system = build_system(seed=9)

    async def read_both():
        from repro import FuncCall
        from tests.conftest import AccountActor

        async def sum_two(self, ctx, other_key):
            mine = await self.get_state(ctx)
            theirs = await self.call_actor(
                ctx, self.ref("account", other_key).id, FuncCall("balance")
            )
            return mine + theirs

        AccountActor.sum_two = sum_two
        try:
            total = None
            # transfers move money between 1 and 2; their sum is invariant
            writers = [
                spawn(
                    system.submit_pact(
                        "account", 1, "transfer", (2.0, 2), access={1: 1, 2: 1}
                    )
                )
                for _ in range(10)
            ]
            for _ in range(5):
                try:
                    total = await system.submit_act("account", 1, "sum_two", 2)
                    assert total == pytest.approx(200.0)
                except TransactionAbortedError:
                    pass
            await gather(*writers)
            return True
        finally:
            del AccountActor.sum_two

    assert system.run(read_both())


def test_pact_waits_for_preceding_act_and_commits():
    """Hybrid rule 2: a batch starts after earlier ACTs finish (§4.4.1)."""
    system = build_system(seed=2)

    async def main():
        act = spawn(system.submit_act("account", 3, "deposit", 10.0))
        pact = spawn(
            system.submit_pact("account", 3, "deposit", 1.0, access={3: 1})
        )
        await gather(act, pact)
        return await system.submit_act("account", 3, "balance")

    assert system.run(main()) == 111.0


def test_act_commit_waits_for_before_set_batches():
    """§4.4.4: an ACT commits only after the batches it read committed."""
    system = build_system(seed=4)
    commit_order = []

    async def main():
        pact = spawn(
            system.submit_pact("account", 6, "deposit", 5.0, access={6: 1})
        )
        # let the batch be scheduled on the actor before the ACT arrives
        # (must exceed the token cycle time so the batch has formed)
        from repro import sim

        await sim.sleep(0.006)
        act = spawn(system.submit_act("account", 6, "deposit", 7.0))

        async def tag(future, name):
            await future
            commit_order.append(name)

        await gather(spawn(tag(pact, "pact")), spawn(tag(act, "act")))
        return await system.submit_act("account", 6, "balance")

    final = system.run(main())
    assert final == 112.0
    assert commit_order == ["pact", "act"]


def test_serializability_check_stats_exposed():
    """Heavy hybrid contention on few actors yields only legal outcomes
    and keeps the money invariant."""
    system = build_system(seed=13)
    accounts = [0, 1, 2]
    outcomes = []

    async def one(i, use_pact):
        frm = i % 3
        to = (i + 1) % 3
        if frm == to:
            return
        try:
            if use_pact:
                await system.submit_pact(
                    "account", frm, "transfer", (1.0, to),
                    access={frm: 1, to: 1},
                )
            else:
                await system.submit_act("account", frm, "transfer", (1.0, to))
            outcomes.append("committed")
        except TransactionAbortedError as exc:
            outcomes.append(exc.reason)

    async def main():
        await gather(
            *[spawn(one(i, i % 3 != 0)) for i in range(60)]
        )
        return [
            await system.submit_pact("account", a, "balance", access={a: 1})
            for a in accounts
        ]

    balances = system.run(main())
    assert sum(balances) == pytest.approx(300.0)
    assert outcomes.count("committed") >= 3
    illegal = [
        o for o in outcomes
        if o not in ("committed",) + tuple(AbortReason.ALL)
    ]
    assert not illegal


def test_incomplete_after_set_optimization_allows_tail_acts():
    """An ACT at the tail of all schedules (no batch after it) passes the
    check because its BeforeSet batches have committed (§4.4.3)."""
    system = build_system(seed=1)

    async def main():
        # commit a PACT first so the actor has a committed batch history
        await system.submit_pact("account", 9, "deposit", 1.0, access={9: 1})
        # now a lone ACT with nothing scheduled after it
        return await system.submit_act("account", 9, "deposit", 2.0)

    assert system.run(main()) == 103.0


def test_incomplete_after_set_without_optimization_aborts():
    """Ablation: disabling the §4.4.3 optimization dooms ACTs whose
    AfterSet is incomplete (i.e. with no batch scheduled after them)."""
    system = build_system(seed=1, incomplete_after_set_optimization=False)

    async def main():
        await system.submit_pact("account", 9, "deposit", 1.0, access={9: 1})
        with pytest.raises(TransactionAbortedError) as excinfo:
            # the deposit ACT conflicts with actor 9's batch history: its
            # BeforeSet is nonempty, its AfterSet incomplete -> abort
            await system.submit_act("account", 9, "deposit", 2.0)
        return excinfo.value.reason

    reason = system.run(main())
    assert reason == AbortReason.INCOMPLETE_AFTER_SET


def test_hybrid_deadlock_resolved_by_aborting_act():
    """PACT-ACT deadlocks (Fig. 9) break by timing out the ACT (§4.4.2);
    the PACT itself must still commit."""
    system = build_system(seed=7, deadlock_timeout=0.01)
    from repro import FuncCall
    from tests.conftest import AccountActor
    from repro import sim

    async def slow_two_hop(self, ctx, other_key):
        await self.get_state(ctx)
        await sim.sleep(0.005)  # widen the race window
        target = self.ref("account", other_key).id
        return await self.call_actor(ctx, target, FuncCall("deposit", 1.0))

    AccountActor.slow_two_hop = slow_two_hop
    try:
        async def main():
            jobs = []
            for i in range(12):
                # ACTs and PACTs hitting the same two actors in both orders
                jobs.append(spawn(guarded(system.submit_act(
                    "account", i % 2, "slow_two_hop", (i + 1) % 2
                ))))
                a, b = i % 2, (i + 1) % 2
                jobs.append(spawn(guarded(system.submit_pact(
                    "account", a, "slow_two_hop", b, access={a: 1, b: 1}
                ))))
            results = await gather(*jobs)
            return results

        async def guarded(coro):
            try:
                await coro
                return "committed"
            except TransactionAbortedError as exc:
                return exc.reason

        results = system.run(main())
        pact_count = results[1::2].count("committed")
        assert pact_count == 12, "every PACT must commit"
    finally:
        del AccountActor.slow_two_hop
