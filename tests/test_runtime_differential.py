"""Differential oracle: SimBackend vs AsyncioBackend (docs/runtime.md).

The asyncio backend makes no determinism promise of its own; its
contract is equality with the deterministic reference on everything the
application can observe: committed state, per-transaction verdicts, and
a serializable trace.  These tests *are* that contract.
"""

import pytest

from repro.workloads.differential import canonical, run_smallbank, run_tpcc


class TestSimBitForBit:
    def test_smallbank_double_run_identical(self):
        """Same seed, same backend → identical down to timing detail."""
        first = run_smallbank("sim", seed=11)
        second = run_smallbank("sim", seed=11)
        assert first == second

    def test_tpcc_double_run_identical(self):
        first = run_tpcc("sim", seed=11)
        second = run_tpcc("sim", seed=11)
        assert first == second

    def test_different_seeds_differ(self):
        """The oracle is not vacuous: seeds actually steer the run."""
        a = run_smallbank("sim", seed=1)
        b = run_smallbank("sim", seed=2)
        assert canonical(a)["state"] != canonical(b)["state"]


class TestCrossBackend:
    def test_smallbank_differential(self):
        sim = run_smallbank("sim", seed=3)
        aio = run_smallbank("asyncio", seed=3)
        assert canonical(sim) == canonical(aio)
        assert sim["serializable"] and aio["serializable"]
        assert sim["committed"] == len(sim["verdicts"])

    def test_tpcc_differential(self):
        sim = run_tpcc("sim", seed=5)
        aio = run_tpcc("asyncio", seed=5)
        assert canonical(sim) == canonical(aio)
        assert sim["serializable"] and aio["serializable"]

    def test_money_conserved_on_both(self):
        """Transfers move money; they never create or destroy it."""
        for backend in ("sim", "asyncio"):
            result = run_smallbank(backend, seed=7)
            total = sum(result["state"])
            assert total == pytest.approx(20_000.0 * len(result["state"]))

    def test_detail_records_both_substrates(self):
        sim = run_smallbank("sim", seed=9)
        aio = run_smallbank("asyncio", seed=9)
        assert sim["detail"]["backend"] == "sim"
        assert aio["detail"]["backend"] == "asyncio"
        # batch partitioning is timing-dependent and may legitimately
        # differ across substrates; only the committed *content* is
        # contractual, and that is covered by `canonical` equality.
        assert aio["detail"]["batches_aborted"] == 0
