"""Unit tests for the per-actor local schedule (§4.2.3, §4.4.1)."""

import pytest

from repro.core.context import SubBatch
from repro.core.schedule import LocalSchedule
from repro.errors import TransactionAbortedError


def sub_batch(bid, prev_bid, plans, coordinator_key=0):
    return SubBatch(
        bid=bid, prev_bid=prev_bid, coordinator_key=coordinator_key,
        plans=tuple(plans),
    )


def test_single_batch_executes_tids_in_order():
    schedule = LocalSchedule()
    schedule.register_batch(sub_batch(10, None, [(10, 1), (11, 1)]))
    turn_first = schedule.await_pact_turn(10, 10)
    turn_second = schedule.await_pact_turn(10, 11)
    assert turn_first.done()
    assert not turn_second.done()
    schedule.pact_access_done(10, 10)
    assert turn_second.done()


def test_multi_access_tid_holds_turn_until_exhausted():
    schedule = LocalSchedule()
    schedule.register_batch(sub_batch(5, None, [(5, 2), (6, 1)]))
    first = schedule.await_pact_turn(5, 5)
    nxt = schedule.await_pact_turn(5, 6)
    assert first.done() and not nxt.done()
    schedule.pact_access_done(5, 5)
    assert not nxt.done(), "tid 5 declared two accesses"
    again = schedule.await_pact_turn(5, 5)
    assert again.done()
    schedule.pact_access_done(5, 5)
    assert nxt.done()


def test_batch_completion_fires_callback_and_orphan_placement():
    completed = []
    schedule = LocalSchedule()
    schedule.on_subbatch_complete = lambda entry: completed.append(entry.bid)
    # batch 20 arrives before its predecessor 10: parked as an orphan
    schedule.register_batch(sub_batch(20, 10, [(20, 1)]))
    assert schedule.batch_entry(20) is None
    assert not schedule.is_empty()
    schedule.register_batch(sub_batch(10, None, [(10, 1)]))
    assert schedule.batch_entry(20) is not None  # spliced in
    t10 = schedule.await_pact_turn(10, 10)
    t20 = schedule.await_pact_turn(20, 20)
    assert t10.done() and not t20.done()
    schedule.pact_access_done(10, 10)
    assert completed == [10]
    assert t20.done()
    schedule.pact_access_done(20, 20)
    assert completed == [10, 20]


def test_duplicate_batch_delivery_ignored():
    schedule = LocalSchedule()
    sb = sub_batch(7, None, [(7, 1)])
    schedule.register_batch(sb)
    schedule.register_batch(sb)
    assert len(schedule.batch_entries) == 1


def test_extra_access_beyond_declared_raises():
    schedule = LocalSchedule()
    schedule.register_batch(sub_batch(3, None, [(3, 1)]))
    schedule.await_pact_turn(3, 3)
    schedule.pact_access_done(3, 3)
    with pytest.raises(TransactionAbortedError, match="exceeded"):
        schedule.pact_access_done(3, 3)


def test_act_admission_waits_for_earlier_batch():
    schedule = LocalSchedule()
    schedule.register_batch(sub_batch(1, None, [(1, 1)]))
    entry = schedule.ensure_act(100)
    assert not entry.admission.done()
    schedule.await_pact_turn(1, 1)
    schedule.pact_access_done(1, 1)  # batch completes
    assert entry.admission.done()


def test_act_admitted_immediately_when_no_batches():
    schedule = LocalSchedule()
    entry = schedule.ensure_act(50)
    assert entry.admission.done()


def test_batch_waits_for_earlier_act_to_end():
    schedule = LocalSchedule()
    act = schedule.ensure_act(100)
    assert act.admission.done()
    schedule.register_batch(sub_batch(200, None, [(200, 1)]))
    turn = schedule.await_pact_turn(200, 200)
    assert not turn.done(), "batch gated on the uncommitted ACT"
    schedule.act_ended(100)
    assert turn.done()


def test_concurrent_acts_between_batches_all_admitted():
    schedule = LocalSchedule()
    schedule.register_batch(sub_batch(1, None, [(1, 1)]))
    schedule.await_pact_turn(1, 1)
    schedule.pact_access_done(1, 1)
    a = schedule.ensure_act(10)
    b = schedule.ensure_act(11)
    assert a.admission.done() and b.admission.done()


def test_before_after_evidence():
    schedule = LocalSchedule()
    schedule.register_batch(sub_batch(1, None, [(1, 1)]))
    schedule.await_pact_turn(1, 1)
    schedule.pact_access_done(1, 1)
    schedule.ensure_act(10)
    assert schedule.before_evidence(10) == 1
    assert schedule.after_evidence(10) is None  # incomplete AfterSet
    schedule.register_batch(sub_batch(20, 1, [(20, 1)]))
    assert schedule.after_evidence(10) == 20


def test_before_evidence_none_without_batches():
    schedule = LocalSchedule()
    schedule.ensure_act(10)
    assert schedule.before_evidence(10) is None


def test_act_commit_carry_is_monotone():
    schedule = LocalSchedule()
    schedule.note_act_commit_carry(5)
    schedule.note_act_commit_carry(3)
    assert schedule.act_maxbs_carry == 5
    schedule.note_act_commit_carry(None)
    assert schedule.act_maxbs_carry == 5
    schedule.note_act_commit_carry(9)
    assert schedule.act_maxbs_carry == 9


def test_rollback_drops_batches_and_fails_waiters():
    schedule = LocalSchedule()
    schedule.register_batch(sub_batch(1, None, [(1, 1), (2, 1)]))
    schedule.register_batch(sub_batch(9, 1, [(9, 1)]))
    schedule.ensure_act(100)
    t2 = schedule.await_pact_turn(1, 2)
    dropped = schedule.rollback_batches()
    assert sorted(dropped) == [1, 9]
    assert t2.done()
    with pytest.raises(TransactionAbortedError):
        t2.result()
    # ACT entries survive the rollback
    assert len(schedule.act_entries) == 1
    assert len(schedule.batch_entries) == 0


def test_batch_committed_removes_entry_and_unblocks_acts():
    schedule = LocalSchedule()
    schedule.register_batch(sub_batch(1, None, [(1, 1)]))
    schedule.await_pact_turn(1, 1)
    schedule.pact_access_done(1, 1)
    schedule.batch_committed(1)
    assert schedule.is_empty()
    # a successor batch whose prev committed before it arrived still places
    schedule.register_batch(sub_batch(30, 1, [(30, 1)]))
    assert schedule.batch_entry(30) is not None
    assert schedule.await_pact_turn(30, 30).done()


def test_commit_before_completion_is_an_error():
    schedule = LocalSchedule()
    schedule.register_batch(sub_batch(1, None, [(1, 1)]))
    with pytest.raises(Exception, match="before completing"):
        schedule.batch_committed(1)


def test_chain_of_three_batches_via_prev_bid_out_of_order():
    completed = []
    schedule = LocalSchedule()
    schedule.on_subbatch_complete = lambda e: completed.append(e.bid)
    schedule.register_batch(sub_batch(30, 20, [(30, 1)]))
    schedule.register_batch(sub_batch(20, 10, [(20, 1)]))
    schedule.register_batch(sub_batch(10, None, [(10, 1)]))
    for bid in (10, 20, 30):
        schedule.await_pact_turn(bid, bid)
    # turns only release in chain order
    schedule.pact_access_done(10, 10)
    schedule.pact_access_done(20, 20)
    schedule.pact_access_done(30, 30)
    assert completed == [10, 20, 30]
