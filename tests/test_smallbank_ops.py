"""Tests for the classic SmallBank operations across engines."""

import pytest

from repro.actors.runtime import SiloConfig
from repro.baselines.nontransactional import NTSystem
from repro.core.system import SnapperSystem
from repro.errors import TransactionAbortedError
from repro.workloads.smallbank import (
    ACCOUNT_KIND,
    INITIAL_CHECKING,
    INITIAL_SAVINGS,
    NTAccountActor,
    SnapperAccountActor,
)


def snapper_system(seed=0):
    system = SnapperSystem(seed=seed)
    system.register_actor(ACCOUNT_KIND, SnapperAccountActor)
    system.start()
    return system


def test_balance_sums_checking_and_savings():
    system = snapper_system()

    async def main():
        return await system.submit_act("account", 1, "balance")

    assert system.run(main()) == INITIAL_CHECKING + INITIAL_SAVINGS


def test_deposit_checking_and_transact_saving():
    system = snapper_system()

    async def main():
        checking = await system.submit_act(
            "account", 1, "deposit_checking", 250.0
        )
        savings = await system.submit_act(
            "account", 1, "transact_saving", -100.0
        )
        total = await system.submit_act("account", 1, "balance")
        return checking, savings, total

    checking, savings, total = system.run(main())
    assert checking == INITIAL_CHECKING + 250.0
    assert savings == INITIAL_SAVINGS - 100.0
    assert total == checking + savings


def test_transact_saving_rejects_overdraft():
    system = snapper_system()

    async def main():
        with pytest.raises(TransactionAbortedError):
            await system.submit_act(
                "account", 1, "transact_saving", -(INITIAL_SAVINGS + 1)
            )
        return await system.submit_act("account", 1, "balance")

    assert system.run(main()) == INITIAL_CHECKING + INITIAL_SAVINGS


def test_write_check_applies_penalty_when_overdrawn():
    system = snapper_system()

    async def main():
        big = INITIAL_CHECKING + INITIAL_SAVINGS + 5.0
        checking = await system.submit_act("account", 1, "write_check", big)
        return checking

    checking = system.run(main())
    # amount + 1.0 penalty deducted from checking
    assert checking == pytest.approx(
        INITIAL_CHECKING - (INITIAL_CHECKING + INITIAL_SAVINGS + 5.0) - 1.0
    )


def test_write_check_no_penalty_when_funded():
    system = snapper_system()

    async def main():
        return await system.submit_act("account", 1, "write_check", 100.0)

    assert system.run(main()) == INITIAL_CHECKING - 100.0


def test_amalgamate_moves_all_funds():
    system = snapper_system()

    async def main():
        moved = await system.submit_pact(
            "account", 1, "amalgamate", 2, access={1: 1, 2: 1}
        )
        b1 = await system.submit_act("account", 1, "balance")
        b2 = await system.submit_act("account", 2, "balance")
        return moved, b1, b2

    moved, b1, b2 = system.run(main())
    assert moved == INITIAL_CHECKING + INITIAL_SAVINGS
    assert b1 == 0.0
    # account 2 now holds its own initial total plus everything moved
    assert b2 == 2 * (INITIAL_CHECKING + INITIAL_SAVINGS)


def test_amalgamate_conserves_total_money():
    system = snapper_system()

    async def main():
        await system.submit_pact(
            "account", 1, "amalgamate", 2, access={1: 1, 2: 1}
        )
        b1 = await system.submit_act("account", 1, "balance")
        b2 = await system.submit_act("account", 2, "balance")
        return b1 + b2

    total = system.run(main())
    assert total == pytest.approx(2 * (INITIAL_CHECKING + INITIAL_SAVINGS))


def test_multi_transfer_noop_variant_single_actor():
    system = snapper_system()

    async def main():
        return await system.submit_act(
            "account", 1, "multi_transfer_noop", (1.0, [], [2, 3], False)
        )

    assert system.run(main()) == "ok"


def test_same_ops_under_nt():
    system = NTSystem(silo=SiloConfig(seed=0), seed=0)
    system.register_actor(ACCOUNT_KIND, NTAccountActor)

    async def main():
        await system.submit("account", 1, "deposit_checking", 10.0)
        await system.submit("account", 1, "transact_saving", 5.0)
        return await system.submit("account", 1, "balance")

    assert system.run(main()) == INITIAL_CHECKING + INITIAL_SAVINGS + 15.0
