"""Tests for the virtual-time event loop, futures, and tasks."""

import pytest

from repro import sim
from repro.errors import CancelledError, SimulationError
from repro.sim import Future, SimLoop


def test_run_until_complete_returns_result():
    loop = SimLoop()

    async def main():
        return 42

    assert loop.run_until_complete(main()) == 42


def test_sleep_advances_virtual_time():
    loop = SimLoop()
    times = []

    async def main():
        times.append(sim.now())
        await sim.sleep(1.5)
        times.append(sim.now())
        await sim.sleep(0.25)
        times.append(sim.now())

    loop.run_until_complete(main())
    assert times == [0.0, 1.5, 1.75]


def test_zero_sleep_yields_control():
    loop = SimLoop()
    order = []

    async def child(tag):
        order.append(f"{tag}-start")
        await sim.sleep(0)
        order.append(f"{tag}-end")

    async def main():
        a = sim.spawn(child("a"))
        b = sim.spawn(child("b"))
        await sim.gather(a, b)

    loop.run_until_complete(main())
    assert order == ["a-start", "b-start", "a-end", "b-end"]


def test_same_time_events_run_in_schedule_order():
    loop = SimLoop()
    order = []
    loop.call_at(1.0, order.append, "first")
    loop.call_at(1.0, order.append, "second")
    loop.call_at(0.5, order.append, "early")
    loop.run()
    assert order == ["early", "first", "second"]


def test_run_until_stops_at_deadline():
    loop = SimLoop()
    fired = []
    loop.call_at(5.0, fired.append, "late")
    loop.call_at(1.0, fired.append, "early")
    loop.run(until=2.0)
    assert fired == ["early"]
    assert loop.now == 2.0
    loop.run()
    assert fired == ["early", "late"]


def test_cannot_schedule_in_the_past():
    loop = SimLoop()
    loop.call_at(3.0, lambda: None)
    loop.run()
    with pytest.raises(SimulationError):
        loop.call_at(1.0, lambda: None)


def test_task_exception_propagates():
    loop = SimLoop()

    async def boom():
        await sim.sleep(1)
        raise ValueError("boom")

    async def main():
        with pytest.raises(ValueError, match="boom"):
            await sim.spawn(boom())

    loop.run_until_complete(main())


def test_future_single_assignment():
    fut = Future()
    fut.set_result(1)
    with pytest.raises(SimulationError):
        fut.set_result(2)
    assert fut.result() == 1
    assert not fut.try_set_result(3)


def test_future_callbacks_fire_once_each():
    fut = Future()
    seen = []
    fut.add_done_callback(lambda f: seen.append("a"))
    fut.set_result(None)
    fut.add_done_callback(lambda f: seen.append("b"))
    assert seen == ["a", "b"]


def test_gather_collects_in_argument_order():
    loop = SimLoop()

    async def delayed(value, delay):
        await sim.sleep(delay)
        return value

    async def main():
        return await sim.gather(
            sim.spawn(delayed("slow", 2.0)), sim.spawn(delayed("fast", 0.5))
        )

    assert loop.run_until_complete(main()) == ["slow", "fast"]


def test_gather_fails_fast():
    loop = SimLoop()

    async def ok():
        await sim.sleep(10)
        return "late"

    async def bad():
        await sim.sleep(1)
        raise RuntimeError("early failure")

    async def main():
        with pytest.raises(RuntimeError, match="early failure"):
            await sim.gather(sim.spawn(ok()), sim.spawn(bad()))
        return sim.now()

    # gather resolves at the failure time, not the slow task's time
    assert loop.run_until_complete(main()) == 1.0


def test_task_cancel_interrupts_sleep():
    loop = SimLoop()
    progress = []

    async def worker():
        progress.append("start")
        await sim.sleep(100)
        progress.append("never")

    async def main():
        task = sim.spawn(worker())
        await sim.sleep(1)
        assert task.cancel()
        with pytest.raises(CancelledError):
            await task
        return sim.now()

    assert loop.run_until_complete(main()) == 1.0
    assert progress == ["start"]


def test_wait_for_times_out():
    loop = SimLoop()

    async def slow():
        await sim.sleep(50)
        return "done"

    async def main():
        with pytest.raises(TimeoutError):
            await sim.wait_for(sim.spawn(slow()), timeout=2.0)
        return sim.now()

    assert loop.run_until_complete(main()) == 2.0


def test_wait_for_passes_result_through():
    loop = SimLoop()

    async def quick():
        await sim.sleep(1)
        return "value"

    async def main():
        return await sim.wait_for(sim.spawn(quick()), timeout=10.0)

    assert loop.run_until_complete(main()) == "value"


def test_deadlocked_main_is_reported():
    loop = SimLoop()

    async def main():
        await Future(label="never")

    with pytest.raises(SimulationError, match="deadlock|pending"):
        loop.run_until_complete(main())


def test_determinism_same_seed_same_trace():
    def run(seed):
        loop = SimLoop(seed=seed)
        trace = []

        async def worker(tag):
            for _ in range(5):
                await sim.sleep(loop.rng.random())
                trace.append((round(sim.now(), 9), tag))

        async def main():
            await sim.gather(*[sim.spawn(worker(i)) for i in range(4)])

        loop.run_until_complete(main())
        return trace

    assert run(7) == run(7)
    assert run(7) != run(8)
