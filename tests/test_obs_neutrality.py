"""Observability must be free when off and invisible when on.

Two contracts, both load-bearing:

* **disabled** — a run with ``observability=False`` (the default)
  registers zero instruments and installs no ``obs`` service; the
  telemetry layer is provably absent, not just quiet;
* **neutral** — the same seeded run with observability on commits the
  same transactions, aborts for the same reasons, records the same
  trace events at the same simulated times, and passes the trace-based
  serializability checker with the same verdict.  Instruments read
  simulated time but never charge CPU or await, so this holds exactly,
  not statistically.
"""

import pytest

from repro.analysis.tracecheck import check_tracer
from repro.actors.runtime import SiloConfig
from repro.core.config import SnapperConfig
from repro.experiments.common import SMALLBANK_FAMILIES
from repro.obs.report import check_phase_sums
from repro.obs.spans import build_spans
from repro.trace import TxnTracer
from repro.workloads.distributions import make_distribution
from repro.workloads.runner import EngineRunner, run_epochs
from repro.workloads.smallbank import SmallBankWorkload

import random


def _run(observability, seed=3):
    runner = EngineRunner(
        "hybrid",
        SMALLBANK_FAMILIES,
        seed=seed,
        silo=SiloConfig(cores=2, seed=seed),
        snapper_config=SnapperConfig(
            num_coordinators=2, num_loggers=2, observability=observability,
        ),
    )
    tracer = TxnTracer(capacity=50_000)
    runner.system.runtime.services["txn_tracer"] = tracer
    dist = make_distribution("uniform", 64, runner.loop.rng)
    workload = SmallBankWorkload(
        dist, txn_size=3, pact_fraction=0.5, rng=random.Random(seed + 100),
    )
    result = run_epochs(
        runner, workload.next_txn, num_clients=2, pipeline_size=4,
        epochs=2, epoch_duration=0.2, warmup_epochs=1,
    )
    system = runner.system
    system.shutdown()
    return result, tracer, system


@pytest.fixture(scope="module")
def paired_runs():
    return _run(observability=False), _run(observability=True)


def test_disabled_run_has_no_telemetry(paired_runs):
    (_, _, system), _ = paired_runs
    assert not system.obs.enabled
    assert len(system.obs) == 0
    assert "obs" not in system.runtime.services


def test_enabled_run_registers_instruments(paired_runs):
    _, (_, _, system) = paired_runs
    assert system.obs.enabled
    assert system.runtime.services["obs"] is system.obs
    names = set(system.obs.instruments)
    # at least one instrument from each instrumented component
    for prefix in (
        "snapper_runtime_", "snapper_coordinator_", "snapper_wal_",
        "snapper_hybrid_", "snapper_act_", "snapper_guard_",
        "snapper_client_",
    ):
        assert any(n.startswith(prefix) for n in names), prefix


def test_observability_does_not_change_outcomes(paired_runs):
    (off, _, _), (on, _, _) = paired_runs
    assert on.metrics.committed == off.metrics.committed > 0
    assert on.metrics.attempted == off.metrics.attempted
    assert on.metrics.abort_breakdown() == off.metrics.abort_breakdown()
    assert on.throughput == off.throughput
    assert on.metrics.latency_percentiles() == (
        off.metrics.latency_percentiles()
    )


def test_observability_does_not_change_the_trace(paired_runs):
    (_, trace_off, _), (_, trace_on, _) = paired_runs
    off_events = [
        (e.time, e.name, e.tid, str(e.actor))
        for e in trace_off.all_events()
    ]
    on_events = [
        (e.time, e.name, e.tid, str(e.actor))
        for e in trace_on.all_events()
    ]
    assert on_events == off_events
    report_off = check_tracer(trace_off)
    report_on = check_tracer(trace_on)
    assert report_on.ok == report_off.ok
    assert report_on.num_events == report_off.num_events
    assert report_on.acts_checked == report_off.acts_checked


def test_registry_agrees_with_epoch_metrics(paired_runs):
    _, (on, _, system) = paired_runs
    obs = system.obs
    committed_family = obs.get("snapper_client_committed_total")
    committed = sum(
        child.value for _, child in committed_family.samples()
    )
    assert committed == on.metrics.committed
    aborted_family = obs.get("snapper_client_aborted_total")
    aborted = sum(
        child.value for _, child in aborted_family.samples()
    ) if aborted_family is not None else 0
    assert aborted == on.metrics.attempted - on.metrics.committed


def test_live_spans_phase_sums_within_tolerance(paired_runs):
    _, (_, tracer, _) = paired_runs
    spans = build_spans(tracer)
    assert spans
    assert check_phase_sums(spans) == []
