"""Recovery properties: crash-at-every-LSN, delta chains, in-doubt tails.

The crash-at-every-LSN test is the core property: whatever prefix of the
WAL a crash leaves behind, the production ``recover_state`` must
reconstruct a committed-consistent deployment — atomic per transaction,
money conserved, balances derivable from the applied markers.
"""

from types import SimpleNamespace

import pytest

from repro.actors.ref import ActorId
from repro.chaos.workload import (
    CHAOS_ACCOUNT_KIND,
    INITIAL_BALANCE,
    ChaosAccountActor,
)
from repro.core.config import SnapperConfig
from repro.core.engine.recovery import (
    DELTA_MARKER,
    RecoveryWarning,
    in_doubt_tail,
    recover_state,
    resolve_in_doubt_tail,
)
from repro.core.system import SnapperSystem
from repro.persistence.records import (
    ActCommitRecord,
    ActPrepareRecord,
    BatchCommitRecord,
    BatchCompleteRecord,
)
from repro.sim.loop import SimLoop, sleep, spawn


class StubLog:
    """A loggers stand-in serving an explicit record list."""

    def __init__(self, records, stamp=False):
        self.enabled = True
        self._records = list(records)
        if stamp:
            for index, record in enumerate(self._records):
                object.__setattr__(record, "lsn", index)

    def add(self, record):
        object.__setattr__(record, "lsn", len(self._records))
        self._records.append(record)

    def all_records(self):
        return list(self._records)


def _raise_on_delta(_state, _delta):
    raise AssertionError("no deltas expected")


# ---------------------------------------------------------------------------
# crash at every LSN
# ---------------------------------------------------------------------------

def test_recover_state_is_consistent_at_every_wal_prefix():
    """Cut the WAL of a real mixed run at every LSN; each prefix must
    recover to an atomic, money-conserving deployment."""
    num_actors = 4
    system = SnapperSystem(config=SnapperConfig(), seed=0)
    system.register_actor(CHAOS_ACCOUNT_KIND, ChaosAccountActor)
    system.start()

    async def drive():
        for index in range(6):
            source = index % num_actors
            dest = (index + 1) % num_actors
            marker = f"m{index}"
            if index % 2 == 0:
                await system.submit_pact(
                    CHAOS_ACCOUNT_KIND, source, "chaos_transfer",
                    (marker, 2.0, (dest,)), access={source: 1, dest: 1},
                )
            else:
                await system.submit_act(
                    CHAOS_ACCOUNT_KIND, source, "chaos_transfer",
                    (marker, 2.0, (dest,)),
                )

    system.run(drive())
    system.shutdown()
    records = sorted(system.loggers.all_records(), key=lambda r: r.lsn)
    assert len(records) > 10
    actor_ids = [ActorId(CHAOS_ACCOUNT_KIND, k) for k in range(num_actors)]

    for cut in range(len(records) + 1):
        prefix = StubLog(records[:cut])
        commit_bids = {r.bid for r in records[:cut]
                       if isinstance(r, BatchCommitRecord)}
        commit_tids = {r.tid for r in records[:cut]
                       if isinstance(r, ActCommitRecord)}
        states = {
            aid: recover_state(
                aid, prefix,
                {"balance": INITIAL_BALANCE, "applied": {}},
                _raise_on_delta,
            )
            for aid in actor_ids
        }
        # conservation at every cut
        total = sum(s["balance"] for s in states.values())
        assert total == pytest.approx(INITIAL_BALANCE * num_actors), (
            f"cut={cut}: money not conserved"
        )
        # each balance is derivable from its applied markers
        for aid, state in states.items():
            derived = INITIAL_BALANCE + sum(state["applied"].values())
            assert state["balance"] == pytest.approx(derived), (
                f"cut={cut}: {aid} balance not explained by markers"
            )
        # atomicity: a marker is on both touched actors or on neither,
        # and only markers whose commit decision is inside the prefix
        # may appear at all
        markers_seen = {}
        for aid, state in states.items():
            for marker in state["applied"]:
                markers_seen.setdefault(marker, set()).add(aid)
        for marker, where in markers_seen.items():
            assert len(where) == 2, (
                f"cut={cut}: {marker} recovered on {where} only"
            )
        if not commit_bids and not commit_tids:
            assert not markers_seen, f"cut={cut}: markers without commits"


# ---------------------------------------------------------------------------
# covered-record selection and delta chains
# ---------------------------------------------------------------------------

def _aid(key=1):
    return ActorId("acct", key)


def test_uncovered_records_are_ignored():
    aid = _aid()
    log = StubLog([
        BatchCompleteRecord(bid=1, actor=aid, state=10.0),
        ActPrepareRecord(tid=2, actor=aid, state=20.0),
    ], stamp=True)
    assert recover_state(aid, log, 0.0, _raise_on_delta) == 0.0


def test_latest_covered_record_wins_by_lsn():
    aid = _aid()
    log = StubLog([
        BatchCompleteRecord(bid=1, actor=aid, state=10.0),
        BatchCommitRecord(bid=1),
        ActPrepareRecord(tid=2, actor=aid, state=20.0),
        ActCommitRecord(tid=2, actor=aid),
    ], stamp=True)
    assert recover_state(aid, log, 0.0, _raise_on_delta) == 20.0


def test_delta_records_replay_onto_covered_base():
    aid = _aid()
    log = StubLog([
        BatchCompleteRecord(bid=1, actor=aid, state=[1]),
        BatchCommitRecord(bid=1),
        BatchCompleteRecord(bid=2, actor=aid, state=(DELTA_MARKER, [2, 3])),
        BatchCommitRecord(bid=2),
    ], stamp=True)

    def apply_delta(state, delta):
        state.extend(delta)
        return state

    assert recover_state(aid, log, [], apply_delta) == [1, 2, 3]


def test_covered_delta_without_base_warns():
    """A covered delta chain whose full base snapshot exists but is not
    covered: recovery proceeds best-effort and warns."""
    aid = _aid()
    log = StubLog([
        BatchCompleteRecord(bid=1, actor=aid, state=[1, 2]),  # uncovered
        BatchCompleteRecord(bid=2, actor=aid, state=(DELTA_MARKER, [3])),
        BatchCommitRecord(bid=2),
    ], stamp=True)

    def apply_delta(state, delta):
        state.extend(delta)
        return state

    with pytest.warns(RecoveryWarning):
        recovered = recover_state(aid, log, [], apply_delta)
    assert recovered == [3]  # replayed from the initial state


def test_delta_chain_from_birth_does_not_warn():
    aid = _aid()
    log = StubLog([
        BatchCompleteRecord(bid=1, actor=aid, state=(DELTA_MARKER, [1])),
        BatchCommitRecord(bid=1),
    ], stamp=True)

    def apply_delta(state, delta):
        state.extend(delta)
        return state

    import warnings
    with warnings.catch_warnings():
        warnings.simplefilter("error", RecoveryWarning)
        assert recover_state(aid, log, [], apply_delta) == [1]


# ---------------------------------------------------------------------------
# the in-doubt tail (2PC participant recovery)
# ---------------------------------------------------------------------------

def test_in_doubt_tail_lists_uncovered_records_past_recovery_point():
    aid = _aid()
    log = StubLog([
        BatchCompleteRecord(bid=1, actor=aid, state=10.0),  # old, uncovered
        BatchCompleteRecord(bid=2, actor=aid, state=20.0),
        BatchCommitRecord(bid=2),                           # recovery point
        ActPrepareRecord(tid=3, actor=aid, state=30.0),     # in doubt
        BatchCompleteRecord(bid=4, actor=aid, state=40.0),  # in doubt
    ], stamp=True)
    tail = in_doubt_tail(aid, log)
    assert [type(r).__name__ for r in tail] == [
        "ActPrepareRecord", "BatchCompleteRecord",
    ]
    assert [r.lsn for r in tail] == sorted(r.lsn for r in tail)


def test_in_doubt_tail_empty_when_everything_is_covered():
    aid = _aid()
    log = StubLog([
        BatchCompleteRecord(bid=1, actor=aid, state=10.0),
        BatchCommitRecord(bid=1),
    ], stamp=True)
    assert in_doubt_tail(aid, log) == []


class RegistryStub:
    def __init__(self, known=True, outcome="commit"):
        self.known = known
        self.outcome = outcome
        self.waited = []

    def batch(self, bid):
        if not self.known:
            return None
        # a faithful double: the resolver re-checks ``status`` after the
        # wait to tell explicit commit entries from watermark resolution.
        status = "committed" if self.outcome == "commit" else "aborted"
        return SimpleNamespace(status=status)

    async def wait_until_committed(self, bid, timeout=None):
        self.waited.append(bid)
        if self.outcome != "commit":
            raise TimeoutError(f"batch {bid} did not commit")


def _resolve(log, registry, state=0.0, timeout=0.05):
    loop = SimLoop(seed=0)
    return loop.run_until_complete(
        resolve_in_doubt_tail(
            _aid(), log, registry, state, _raise_on_delta, timeout=timeout
        )
    )


def test_tail_batch_adopted_once_registry_commits():
    aid = _aid()
    log = StubLog([
        BatchCompleteRecord(bid=5, actor=aid, state=55.0),
    ], stamp=True)
    registry = RegistryStub(outcome="commit")
    assert _resolve(log, registry) == 55.0
    assert registry.waited == [5]


def test_tail_batch_abort_stops_the_walk():
    """An aborted batch ends resolution: later tail records embed its
    speculative effects and must not be adopted either."""
    aid = _aid()
    log = StubLog([
        BatchCompleteRecord(bid=5, actor=aid, state=55.0),
        BatchCompleteRecord(bid=6, actor=aid, state=66.0),
    ], stamp=True)
    registry = RegistryStub(outcome="abort")
    assert _resolve(log, registry) == 0.0
    assert registry.waited == [5]  # never asked about 6


def test_tail_batch_unknown_to_registry_is_presumed_aborted():
    """Registry amnesia: a batch from before a silo recovery whose
    commit record is absent was resolved-aborted by the recovery commit
    rule — the tail walk must not consult the watermark."""
    aid = _aid()
    log = StubLog([
        BatchCompleteRecord(bid=5, actor=aid, state=55.0),
    ], stamp=True)
    registry = RegistryStub(known=False)
    assert _resolve(log, registry) == 0.0
    assert registry.waited == []


def test_tail_act_presumed_abort_after_grace_period():
    aid = _aid()
    log = StubLog([
        ActPrepareRecord(tid=9, actor=aid, state=99.0),
    ], stamp=True)
    assert _resolve(log, RegistryStub()) == 0.0


def test_tail_act_adopted_when_decision_lands_during_grace_period():
    """The coordinator's durable commit record appears while the
    reactivated participant is waiting: the prepared state is adopted."""
    aid = _aid()
    log = StubLog([
        ActPrepareRecord(tid=9, actor=aid, state=99.0),
    ], stamp=True)
    loop = SimLoop(seed=0)

    async def main():
        async def land_decision():
            await sleep(0.01)
            log.add(ActCommitRecord(tid=9, actor=aid))

        spawn(land_decision())
        return await resolve_in_doubt_tail(
            aid, log, RegistryStub(), 0.0, _raise_on_delta, timeout=0.05
        )

    assert loop.run_until_complete(main()) == 99.0


def test_tail_act_abort_does_not_stop_the_walk():
    """Unlike batches, an aborted ACT's effects were undone before any
    later record was logged — later decided work is still adopted."""
    aid = _aid()
    log = StubLog([
        ActPrepareRecord(tid=9, actor=aid, state=99.0),   # presumed abort
        ActPrepareRecord(tid=10, actor=aid, state=111.0),
    ], stamp=True)
    loop = SimLoop(seed=0)

    async def main():
        async def land_decision():
            await sleep(0.01)
            log.add(ActCommitRecord(tid=10, actor=aid))

        spawn(land_decision())
        return await resolve_in_doubt_tail(
            aid, log, RegistryStub(), 0.0, _raise_on_delta, timeout=0.05
        )

    # tid 9 never decides (presumed abort, skipped); tid 10's decision
    # lands during tid 9's grace period and is adopted.
    assert loop.run_until_complete(main()) == 111.0
