"""repro.obs exporters: Prometheus text, JSON snapshot, Chrome trace."""

import json

from repro.obs.exporters import (
    PID_ACTORS,
    PID_TRANSACTIONS,
    spans_to_chrome_trace,
    to_json_snapshot,
    to_prometheus,
    validate_prometheus,
    write_chrome_trace,
)
from repro.obs.instruments import MetricsRegistry
from repro.obs.spans import build_txn_spans
from repro.trace import TraceEvent


def _registry():
    obs = MetricsRegistry()
    obs.counter("snapper_test_events_total", "events").inc(3)
    family = obs.counter(
        "snapper_test_calls_total", "calls", labelnames=("method",)
    )
    family.labels(method="new_pact").inc(2)
    family.labels(method='we"ird\nname').inc()
    hist = obs.histogram(
        "snapper_test_wait_seconds", "waits", buckets=(0.01, 0.1)
    )
    hist.observe(0.005)
    hist.observe(0.05)
    hist.observe(5.0)
    return obs


def _spans():
    mk = TraceEvent
    events = [
        mk(1.0, "submitted", tid=7),
        mk(1.2, "registered", tid=7, bid=3),
        mk(1.5, "turn_started", tid=7, actor="acct:1"),
        mk(1.6, "turn_done", tid=7, actor="acct:1"),
        mk(1.8, "execution_done", tid=7),
        mk(2.4, "committed", tid=7),
    ]
    return [build_txn_spans(7, "PACT", events)]


# ---------------------------------------------------------------------------
# Prometheus
# ---------------------------------------------------------------------------
def test_prometheus_text_round_trips_validation():
    text = to_prometheus(_registry())
    assert validate_prometheus(text) == []
    assert "# TYPE snapper_test_events_total counter" in text
    assert "snapper_test_events_total 3" in text
    assert 'snapper_test_calls_total{method="new_pact"} 2' in text
    # label values are escaped
    assert 'method="we\\"ird\\nname"' in text
    # histogram series: cumulative buckets, +Inf == _count
    assert 'snapper_test_wait_seconds_bucket{le="0.01"} 1' in text
    assert 'snapper_test_wait_seconds_bucket{le="0.1"} 2' in text
    assert 'snapper_test_wait_seconds_bucket{le="+Inf"} 3' in text
    assert "snapper_test_wait_seconds_count 3" in text


def test_empty_registry_exports_empty_and_valid():
    text = to_prometheus(MetricsRegistry())
    assert text == ""
    assert validate_prometheus(text) == []


def test_validate_catches_format_violations():
    assert validate_prometheus("snapper_x_total 1\n")  # no TYPE
    assert validate_prometheus(
        "# TYPE snapper_x_total counter\nsnapper_x_total one\n"
    )  # bad value
    assert validate_prometheus(
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\nh_count 3\n'
    )  # non-cumulative buckets
    assert validate_prometheus(
        "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n"
    )  # missing +Inf
    assert validate_prometheus(
        "# TYPE h histogram\n"
        'h_bucket{le="+Inf"} 2\nh_count 3\n'
    )  # _count != +Inf


# ---------------------------------------------------------------------------
# JSON snapshot
# ---------------------------------------------------------------------------
def test_json_snapshot_serializable_with_spans():
    snapshot = to_json_snapshot(_registry(), _spans())
    encoded = json.loads(json.dumps(snapshot))
    assert "snapper_test_events_total" in encoded["metrics"]
    assert encoded["spans"]["transactions"] == 1
    assert "PACT" in encoded["spans"]["modes"]


# ---------------------------------------------------------------------------
# Chrome trace
# ---------------------------------------------------------------------------
def test_chrome_trace_structure_and_nesting():
    trace = spans_to_chrome_trace(_spans())
    assert trace["displayTimeUnit"] == "ms"
    events = trace["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert {e["name"] for e in metas} >= {"process_name", "thread_name"}

    txn_events = [e for e in xs if e["pid"] == PID_TRANSACTIONS]
    root = next(e for e in txn_events if e["cat"] == "txn")
    assert root["ts"] == 1.0e6 and root["dur"] == 1.4e6
    # every phase/turn event is contained in the root's interval
    for event in txn_events:
        assert event["ts"] >= root["ts"]
        assert event["ts"] + event["dur"] <= root["ts"] + root["dur"]
    execute = next(e for e in txn_events if e["name"] == "execute")
    turn = next(e for e in txn_events if e["cat"] == "turn")
    assert turn["ts"] >= execute["ts"]
    assert turn["ts"] + turn["dur"] <= execute["ts"] + execute["dur"]
    # the actor view carries the same turn on its own process
    actor_events = [e for e in xs if e["pid"] == PID_ACTORS]
    assert len(actor_events) == 1
    assert actor_events[0]["args"]["tid"] == 7


def test_write_chrome_trace_file(tmp_path):
    path = tmp_path / "trace.json"
    count = write_chrome_trace(_spans(), str(path))
    document = json.loads(path.read_text(encoding="utf-8"))
    assert len(document["traceEvents"]) == count > 0
