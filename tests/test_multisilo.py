"""Tests for the multi-server deployment extension (paper §7).

The paper defers multi-server Snapper to future work but sketches the
key concerns: distributed vs single-server transactions, and the impact
of coordinator placement on token circulation latency.  This extension
implements the substrate: actors hashed (or pinned) across silos, each
with its own cores, and cross-silo messages paying a higher latency.
"""

import pytest

from repro import SnapperConfig, SnapperSystem, sim
from repro.actors import Actor, ActorRuntime, SiloConfig
from repro.actors.ref import ActorId
from repro.sim import SimLoop, gather, spawn

from tests.conftest import AccountActor


def multisilo_system(num_silos=2, placement="spread", seed=0, **cfg):
    config = SnapperConfig(**cfg)
    config.coordinator_placement = placement
    system = SnapperSystem(
        config=config,
        silo=SiloConfig(num_silos=num_silos, seed=seed),
        seed=seed,
    )
    system.register_actor("account", AccountActor)
    system.start()
    return system


# ---------------------------------------------------------------------------
# runtime-level placement mechanics
# ---------------------------------------------------------------------------
class Echo(Actor):
    reentrant = True

    async def ping(self, _input=None):
        return self.runtime.silo_of(self.id)


def test_actors_hash_across_silos():
    loop = SimLoop()
    runtime = ActorRuntime(loop, SiloConfig(num_silos=4))
    runtime.register("echo", Echo)
    silos = {runtime.silo_of(ActorId("echo", key)) for key in range(50)}
    assert silos == {0, 1, 2, 3}


def test_pinning_overrides_hash():
    loop = SimLoop()
    runtime = ActorRuntime(loop, SiloConfig(num_silos=4))
    runtime.register("echo", Echo)
    actor_id = ActorId("echo", "x")
    runtime.pin_actor(actor_id, 2)
    assert runtime.silo_of(actor_id) == 2


def test_single_silo_everything_on_zero():
    loop = SimLoop()
    runtime = ActorRuntime(loop, SiloConfig(num_silos=1))
    assert runtime.silo_of(ActorId("echo", 1)) == 0
    assert len(runtime.cpu_pools) == 1


def test_cross_silo_messages_cost_more():
    """A call chain between silos takes longer than one within a silo."""
    loop = SimLoop(seed=5)
    runtime = ActorRuntime(
        loop,
        SiloConfig(num_silos=2, net_latency=50e-6, net_jitter=0.0,
                   cross_silo_latency=500e-6, cross_silo_jitter=0.0),
    )

    class Chain(Actor):
        reentrant = True

        async def hop(self, to_key):
            if to_key is None:
                return "end"
            return await self.ref("chain", to_key).call("hop", None)

    runtime.register("chain", Chain)
    a, b = ActorId("chain", "a"), ActorId("chain", "b"),
    c = ActorId("chain", "c")
    runtime.pin_actor(a, 0)
    runtime.pin_actor(b, 0)
    runtime.pin_actor(c, 1)

    async def timed(first, second):
        start = loop.now
        await runtime.ref("chain", first).call("hop", second)
        return loop.now - start

    async def main():
        local = await timed("a", "b")     # both silo 0
        remote = await timed("a", "c")    # crosses silos
        return local, remote

    local, remote = loop.run_until_complete(main())
    assert remote > local + 400e-6
    assert runtime.cross_silo_messages > 0


def test_per_silo_cpu_pools_are_independent():
    loop = SimLoop()
    runtime = ActorRuntime(loop, SiloConfig(num_silos=2, cores=1,
                                            cpu_per_dispatch=0.0))

    class Burner(Actor):
        reentrant = True

        async def burn(self):
            await self.charge(1.0)

    runtime.register("burner", Burner)
    hot = ActorId("burner", "hot1"), ActorId("burner", "hot2")
    runtime.pin_actor(hot[0], 0)
    runtime.pin_actor(hot[1], 1)

    async def main():
        await gather(
            runtime.ref("burner", "hot1").call("burn"),
            runtime.ref("burner", "hot2").call("burn"),
        )

    loop.run_until_complete(main())
    # 2 seconds of work over two 1-core silos runs in parallel
    assert loop.now < 1.5
    assert runtime.cpu_pools[0].busy_time == pytest.approx(1.0)
    assert runtime.cpu_pools[1].busy_time == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Snapper on multiple silos
# ---------------------------------------------------------------------------
def test_multisilo_pact_and_act_commit():
    system = multisilo_system(num_silos=2)

    async def main():
        await system.submit_pact(
            "account", 1, "transfer", (30.0, 2), access={1: 1, 2: 1}
        )
        await system.submit_act("account", 3, "deposit", 5.0)
        return [
            await system.submit_act("account", k, "balance") for k in (1, 2, 3)
        ]

    assert system.run(main()) == [70.0, 130.0, 105.0]


def test_multisilo_money_conserved_under_concurrency():
    system = multisilo_system(num_silos=4, seed=3)
    from repro import TransactionAbortedError

    async def one(i):
        frm, to = i % 10, (i + 3) % 10
        if frm == to:
            return
        try:
            await system.submit_pact(
                "account", frm, "transfer", (2.0, to),
                access={frm: 1, to: 1},
            )
        except TransactionAbortedError:
            pass

    async def main():
        await gather(*[spawn(one(i)) for i in range(30)])
        await sim.sleep(0.05)
        return [
            await system.submit_act("account", k, "balance")
            for k in range(10)
        ]

    balances = system.run(main())
    assert sum(balances) == pytest.approx(1000.0)


def test_coordinator_placement_policies():
    spread = multisilo_system(num_silos=4, placement="spread")
    pinned = multisilo_system(num_silos=4, placement=2)
    from repro.core.system import COORDINATOR_KIND

    spread_silos = {
        spread.runtime.silo_of(ActorId(COORDINATOR_KIND, k))
        for k in range(spread.config.num_coordinators)
    }
    pinned_silos = {
        pinned.runtime.silo_of(ActorId(COORDINATOR_KIND, k))
        for k in range(pinned.config.num_coordinators)
    }
    assert len(spread_silos) > 1
    assert pinned_silos == {2}


def test_pinned_ring_shortens_token_cycle():
    """§7: coordinator placement influences token circulation latency —
    a ring pinned to one silo circulates without cross-silo hops."""

    def run_one(placement):
        system = multisilo_system(
            num_silos=4, placement=placement, seed=2,
            token_cycle_time=0.0,  # expose pure messaging latency
        )

        async def main():
            # exercise the ring with a few PACTs, then measure messages
            for i in range(5):
                await system.submit_pact(
                    "account", i, "deposit", 1.0, access={i: 1}
                )
            return system.runtime.cross_silo_messages

        return system.run(main())

    spread_crossings = run_one("spread")
    pinned_crossings = run_one(0)
    assert pinned_crossings < spread_crossings


def test_multisilo_recovery_works():
    system = multisilo_system(num_silos=2)

    async def phase1():
        await system.submit_pact(
            "account", 1, "transfer", (25.0, 2), access={1: 1, 2: 1}
        )

    system.run(phase1())
    system.crash_silo()

    async def phase2():
        await system.recover()
        return [
            await system.submit_act("account", k, "balance") for k in (1, 2)
        ]

    assert system.run(phase2()) == [75.0, 125.0]
