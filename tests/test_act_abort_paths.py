"""Targeted tests for the ACT abort machinery: attempted-target
notification, tombstones, and lock hygiene after failures."""

import pytest

from repro import FuncCall, TransactionAbortedError, sim
from repro.sim import gather, spawn

from tests.conftest import AccountActor, build_system


def lock_of(system, key):
    activation = system.runtime._activations.get(
        system.actor("account", key).id
    )
    return None if activation is None else activation.actor._lock


def test_no_locks_leak_after_partial_multi_transfer_failure():
    """A multi_transfer that dies mid-way (insufficient balance happens
    after a parallel deposit was already sent) must release every lock
    it touched, including on actors whose call was still in flight."""
    system = build_system(seed=21)

    async def failing_fanout(self, ctx, to_keys):
        # send deposits first, then fail before awaiting them
        for key in to_keys:
            spawn(self.call_actor(
                ctx, self.ref("account", key).id, FuncCall("deposit", 1.0)
            ))
        await sim.sleep(0)  # let the sends leave
        raise RuntimeError("late failure")

    AccountActor.failing_fanout = failing_fanout
    try:
        async def main():
            with pytest.raises(TransactionAbortedError):
                await system.submit_act("account", 0, "failing_fanout",
                                        [1, 2, 3])
            # every touched actor must be lock-free afterwards
            await sim.sleep(0.05)
            for key in (0, 1, 2, 3):
                lock = lock_of(system, key)
                if lock is not None:
                    assert not lock.holders, f"lock leak on account {key}"
                    assert lock.queue_length == 0
            # and all actors remain usable
            return await system.submit_act("account", 1, "deposit", 5.0)

        assert system.run(main()) in (105.0, 106.0)
    finally:
        del AccountActor.failing_fanout


def test_tombstone_rejects_late_invocation():
    """An invocation arriving after its transaction aborted is rejected
    and does not acquire locks."""
    system = build_system(seed=22)

    async def slow_then_fail(self, ctx, to_key):
        # late deposit races with the abort below
        spawn(self.call_actor(
            ctx, self.ref("account", to_key).id, FuncCall("deposit", 7.0)
        ))
        raise RuntimeError("immediate failure")

    AccountActor.slow_then_fail = slow_then_fail
    try:
        async def main():
            with pytest.raises(TransactionAbortedError):
                await system.submit_act("account", 0, "slow_then_fail", 9)
            await sim.sleep(0.05)  # let the raced deposit resolve
            balance = await system.submit_act("account", 9, "balance")
            lock = lock_of(system, 9)
            return balance, (lock.holders if lock else set())

        balance, holders = system.run(main())
        assert balance == 100.0, "the aborted deposit must not stick"
        assert not holders
    finally:
        del AccountActor.slow_then_fail


def test_sustained_contention_keeps_committing():
    """Under sustained same-actor contention, aborted transactions must
    not poison actors: newer transactions still commit (wait-die
    liveness)."""
    system = build_system(seed=23)
    outcomes = []

    async def one(i):
        try:
            await system.submit_act(
                "account", i % 3, "transfer", (1.0, (i + 1) % 3)
            )
            outcomes.append("committed")
        except TransactionAbortedError as exc:
            outcomes.append(exc.reason)

    async def main():
        for wave in range(6):
            await gather(*[spawn(one(i + wave)) for i in range(6)])
        balances = [
            await system.submit_act("account", k, "balance") for k in range(3)
        ]
        return balances

    balances = system.run(main())
    assert sum(balances) == pytest.approx(300.0)
    # later waves must still commit: no permanent poisoning
    assert outcomes[-6:].count("committed") >= 1
    assert outcomes.count("committed") >= 6


def test_abort_reports_reach_attempted_targets():
    """The abort fan-out covers attempted-but-unconfirmed participants."""
    system = build_system(seed=24)
    seen_aborts = []

    from repro.core.transactional_actor import TransactionalActor

    original = TransactionalActor.act_abort

    async def spying_abort(self, tid):
        seen_aborts.append((self.id.key, tid))
        return await original(self, tid)

    TransactionalActor.act_abort = spying_abort

    async def failing_fanout(self, ctx, to_keys):
        for key in to_keys:
            spawn(self.call_actor(
                ctx, self.ref("account", key).id, FuncCall("deposit", 1.0)
            ))
        # wait until the calls have actually been sent (attempted set
        # populated), but fail before their replies can return
        run = self._acts[ctx.tid]
        while len(run.info.attempted) < len(to_keys):
            await sim.sleep(0.00005)
        raise RuntimeError("fail before any reply")

    AccountActor.failing_fanout = failing_fanout
    try:
        async def main():
            with pytest.raises(TransactionAbortedError):
                await system.submit_act("account", 0, "failing_fanout", [5, 6])
            await sim.sleep(0.05)

        system.run(main())
        aborted_keys = {key for key, _ in seen_aborts}
        assert {5, 6} <= aborted_keys
    finally:
        TransactionalActor.act_abort = original
        del AccountActor.failing_fanout


def test_wait_die_liveness_oldest_commits():
    """Wait-die kills younger requesters arriving while the lock is
    held, but the system keeps committing as the lock frees up: with
    arrivals spread out, a hot actor still makes steady progress."""
    system = build_system(seed=25)

    async def one(i):
        # spread arrivals so not everything lands while the lock is held
        await sim.sleep(0.002 * i)
        try:
            await system.submit_act("account", 0, "deposit", 1.0)
            return 1
        except TransactionAbortedError:
            return 0

    async def main():
        results = await gather(*[spawn(one(i)) for i in range(40)])
        final = await system.submit_act("account", 0, "balance")
        return sum(results), final

    committed, final = system.run(main())
    assert committed >= 10, "hot-actor deposits must keep committing"
    # committed deposits are exactly reflected in the balance
    assert final == pytest.approx(100.0 + committed)
