"""End-to-end tests for PACT execution (§4.2)."""

import pytest

from repro import AbortReason, TransactionAbortedError
from repro.sim import gather, spawn

from tests.conftest import build_system


def test_single_actor_pact_commits(system):
    async def main():
        return await system.submit_pact(
            "account", 1, "deposit", 50.0, access={1: 1}
        )

    assert system.run(main()) == 150.0


def test_multi_actor_pact_transfers_money(system):
    async def main():
        balance = await system.submit_pact(
            "account", 1, "transfer", (30.0, 2), access={1: 1, 2: 1}
        )
        b1 = await system.submit_pact("account", 1, "balance", access={1: "r"})
        b2 = await system.submit_pact("account", 2, "balance", access={2: "r"})
        return balance, b1, b2

    balance, b1, b2 = system.run(main())
    assert balance == 70.0
    assert (b1, b2) == (70.0, 130.0)


def test_multi_transfer_parallel_deposits(system):
    async def main():
        await system.submit_pact(
            "account",
            1,
            "multi_transfer",
            (10.0, [2, 3, 4]),
            access={1: 1, 2: 1, 3: 1, 4: 1},
        )
        balances = await gather(
            *[
                spawn(
                    system.submit_pact(
                        "account", k, "balance", access={k: 1}
                    )
                )
                for k in (1, 2, 3, 4)
            ]
        )
        return balances

    assert system.run(main()) == [70.0, 110.0, 110.0, 110.0]


def test_concurrent_pacts_all_commit_no_aborts(system):
    """PACTs never abort due to conflicts (§3.1), even under contention."""

    async def main():
        results = await gather(
            *[
                spawn(
                    system.submit_pact(
                        "account", 1, "deposit", 1.0, access={1: 1}
                    )
                )
                for _ in range(50)
            ]
        )
        final = await system.submit_pact("account", 1, "balance", access={1: "r"})
        return results, final

    results, final = system.run(main())
    assert len(results) == 50
    assert final == 150.0
    assert system.registry.batches_aborted == 0


def test_concurrent_transfers_conserve_money(system):
    """Serializability: total balance is invariant under transfers."""
    accounts = list(range(8))

    async def main():
        txns = []
        for i in accounts:
            to = (i + 3) % len(accounts)
            txns.append(
                spawn(
                    system.submit_pact(
                        "account",
                        i,
                        "transfer",
                        (5.0, to),
                        access={i: 1, to: 1},
                    )
                )
            )
        await gather(*txns)
        balances = []
        for i in accounts:
            balances.append(
                await system.submit_pact("account", i, "balance", access={i: 1})
            )
        return balances

    balances = system.run(main())
    assert sum(balances) == pytest.approx(100.0 * len(accounts))


def test_pact_user_abort_rolls_back_whole_batch(system):
    """A PACT that throws aborts and leaves no partial effects (§3.2.3)."""

    async def main():
        with pytest.raises(TransactionAbortedError) as excinfo:
            await system.submit_pact(
                "account", 1, "transfer", (1000.0, 2), access={1: 1, 2: 1}
            )
        assert excinfo.value.reason in (
            AbortReason.USER_ABORT,
            AbortReason.CASCADING,
        )
        b1 = await system.submit_pact("account", 1, "balance", access={1: "r"})
        b2 = await system.submit_pact("account", 2, "balance", access={2: "r"})
        return b1, b2

    assert system.run(main()) == (100.0, 100.0)
    assert system.controller.cascades == 1


def test_pact_batches_execute_in_bid_order(system):
    """Committed effects respect the global tid order within an actor."""

    async def main():
        # sequential submissions => deterministic order of effects
        await system.submit_pact("account", 7, "deposit", 1.0, access={7: 1})
        await system.submit_pact("account", 7, "withdraw", 50.0, access={7: 1})
        return await system.submit_pact("account", 7, "balance", access={7: "r"})

    assert system.run(main()) == 51.0


def test_pact_batching_groups_transactions():
    """Concurrent PACTs land in few batches (amortization, §4.2.2)."""
    system = build_system()

    async def main():
        await gather(
            *[
                spawn(
                    system.submit_pact(
                        "account", i % 4, "deposit", 1.0, access={i % 4: 1}
                    )
                )
                for i in range(40)
            ]
        )

    system.run(main())
    committed = system.registry.batches_committed
    assert committed < 40, "batching should group transactions"


def test_no_batching_ablation_one_batch_per_pact():
    system = build_system(batching_enabled=False)

    async def main():
        await gather(
            *[
                spawn(
                    system.submit_pact(
                        "account", 1, "deposit", 1.0, access={1: 1}
                    )
                )
                for _ in range(10)
            ]
        )

    system.run(main())
    assert system.registry.batches_committed == 10


def test_pact_requires_first_actor_in_access_info(system):
    async def main():
        with pytest.raises(Exception, match="must include the first actor"):
            await system.submit_pact(  # snapper: noqa
                "account", 1, "deposit", 1.0, access={2: 1}
            )

    system.run(main())


def test_pact_without_access_info_rejected(system):
    with pytest.raises(ValueError, match="actorAccessInfo"):
        system.run(system.submit_pact("account", 1, "deposit", 1.0))


def test_declared_multiple_accesses_same_actor(system):
    """A PACT may access the same actor several times (§3.1)."""

    class _:  # marker for readability only
        pass

    async def main():
        # deposit twice to account 2 through two call_actor invocations
        return await system.submit_pact(
            "account", 1, "double_deposit", 2, access={1: 1, 2: 2}
        )

    # add the method dynamically on the class for this test
    from repro import FuncCall
    from tests.conftest import AccountActor

    async def double_deposit(self, ctx, to_key):
        await self.get_state(ctx)
        target = self.ref("account", to_key).id
        await self.call_actor(ctx, target, FuncCall("deposit", 5.0))
        await self.call_actor(ctx, target, FuncCall("deposit", 7.0))
        return "done"

    AccountActor.double_deposit = double_deposit
    try:
        assert system.run(main()) == "done"
        assert (
            system.run(
                system.submit_pact("account", 2, "balance", access={2: "r"})
            )
            == 112.0
        )
    finally:
        del AccountActor.double_deposit


def test_logging_writes_batch_records(system):
    async def main():
        await system.submit_pact(
            "account", 1, "transfer", (10.0, 2), access={1: 1, 2: 1}
        )

    system.run(main())
    kinds = [r.kind for r in system.loggers.all_records()]
    assert "BatchInfoRecord" in kinds
    assert "BatchCompleteRecord" in kinds
    assert "BatchCommitRecord" in kinds


def test_cc_only_mode_writes_no_logs():
    system = build_system(logging_enabled=False)

    async def main():
        return await system.submit_pact(
            "account", 1, "deposit", 5.0, access={1: 1}
        )

    assert system.run(main()) == 105.0
    assert system.loggers.records_persisted() == 0
