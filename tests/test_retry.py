"""Tests for the client-side retry utility."""

import pytest

from repro import AbortReason, TransactionAbortedError, sim
from repro.retry import RetriesExhausted, retry_transaction
from repro.sim import SimLoop, gather, spawn

from tests.conftest import build_system


def test_retry_succeeds_after_transient_aborts():
    loop = SimLoop()
    attempts = []

    async def flaky():
        attempts.append(1)
        if len(attempts) < 3:
            raise TransactionAbortedError("conflict", AbortReason.ACT_CONFLICT)
        return "done"

    async def main():
        return await retry_transaction(flaky, max_attempts=5)

    assert loop.run_until_complete(main()) == "done"
    assert len(attempts) == 3


def test_retry_backs_off_between_attempts():
    loop = SimLoop()

    async def always_fails():
        raise TransactionAbortedError("conflict", AbortReason.ACT_CONFLICT)

    async def main():
        with pytest.raises(RetriesExhausted) as excinfo:
            await retry_transaction(
                always_fails, max_attempts=4, base_backoff=1e-3
            )
        assert excinfo.value.attempts == 4
        assert excinfo.value.reason == AbortReason.ACT_CONFLICT
        return sim.now()

    elapsed = loop.run_until_complete(main())
    assert elapsed > 0, "backoff must consume simulated time"


def test_user_aborts_are_not_retried():
    loop = SimLoop()
    attempts = []

    async def user_abort():
        attempts.append(1)
        raise TransactionAbortedError("bad input", AbortReason.USER_ABORT)

    async def main():
        with pytest.raises(TransactionAbortedError) as excinfo:
            await retry_transaction(user_abort)
        assert excinfo.value.reason == AbortReason.USER_ABORT

    loop.run_until_complete(main())
    assert len(attempts) == 1


def test_retry_requires_positive_attempts():
    loop = SimLoop()

    async def main():
        with pytest.raises(ValueError):
            await retry_transaction(lambda: None, max_attempts=0)

    loop.run_until_complete(main())


def test_retry_drives_hot_actor_to_full_commit_count():
    """With retries, every deposit eventually lands despite wait-die."""
    system = build_system(seed=71)

    async def one(i):
        await sim.sleep(0.0005 * i)
        return await retry_transaction(
            lambda: system.submit_act("account", 0, "deposit", 1.0),
            max_attempts=20,
            base_backoff=2e-3,
        )

    async def main():
        await gather(*[spawn(one(i)) for i in range(25)])
        return await system.submit_act("account", 0, "balance")

    assert system.run(main()) == 125.0
