"""Tests for simulation synchronization primitives and hardware models."""

import pytest

from repro import sim
from repro.sim import CpuPool, Event, IoDevice, Lock, Queue, Semaphore, SimLoop


def test_lock_is_mutually_exclusive():
    loop = SimLoop()
    lock = Lock()
    active = [0]
    max_active = [0]

    async def worker():
        async with lock:
            active[0] += 1
            max_active[0] = max(max_active[0], active[0])
            await sim.sleep(1)
            active[0] -= 1

    async def main():
        await sim.gather(*[sim.spawn(worker()) for _ in range(5)])

    loop.run_until_complete(main())
    assert max_active[0] == 1
    assert loop.now == 5.0  # fully serialized


def test_semaphore_allows_up_to_n():
    loop = SimLoop()
    semaphore = Semaphore(3)
    max_active = [0]
    active = [0]

    async def worker():
        async with semaphore:
            active[0] += 1
            max_active[0] = max(max_active[0], active[0])
            await sim.sleep(1)
            active[0] -= 1

    async def main():
        await sim.gather(*[sim.spawn(worker()) for _ in range(9)])

    loop.run_until_complete(main())
    assert max_active[0] == 3
    assert loop.now == 3.0  # 9 jobs / 3 slots x 1s


def test_semaphore_fifo_order():
    loop = SimLoop()
    semaphore = Semaphore(1)
    order = []

    async def worker(tag):
        await semaphore.acquire()
        order.append(tag)
        await sim.sleep(1)
        semaphore.release()

    async def main():
        tasks = []
        for tag in range(4):
            tasks.append(sim.spawn(worker(tag)))
            await sim.sleep(0.01)
        await sim.gather(*tasks)

    loop.run_until_complete(main())
    assert order == [0, 1, 2, 3]


def test_event_releases_all_waiters():
    loop = SimLoop()
    event = Event()
    released = []

    async def waiter(tag):
        await event.wait()
        released.append(tag)

    async def main():
        tasks = [sim.spawn(waiter(i)) for i in range(3)]
        await sim.sleep(2)
        assert released == []
        event.set()
        await sim.gather(*tasks)
        # late waiters pass straight through
        await event.wait()

    loop.run_until_complete(main())
    assert sorted(released) == [0, 1, 2]


def test_queue_put_get():
    loop = SimLoop()
    queue = Queue()
    got = []

    async def consumer():
        for _ in range(3):
            got.append(await queue.get())

    async def main():
        task = sim.spawn(consumer())
        queue.put("a")
        await sim.sleep(1)
        queue.put("b")
        queue.put("c")
        await task

    loop.run_until_complete(main())
    assert got == ["a", "b", "c"]


def test_queue_get_nowait_raises_when_empty():
    queue = Queue()
    with pytest.raises(IndexError):
        queue.get_nowait()
    queue.put(1)
    assert queue.get_nowait() == 1


def test_cpu_pool_caps_throughput():
    loop = SimLoop()
    cpu = CpuPool(2)

    async def job():
        await cpu.execute(1.0)

    async def main():
        await sim.gather(*[sim.spawn(job()) for _ in range(10)])

    loop.run_until_complete(main())
    # 10 seconds of work over 2 cores takes 5 simulated seconds.
    assert loop.now == 5.0
    assert cpu.busy_time == 10.0
    assert cpu.utilization(loop.now) == 1.0


def test_cpu_pool_more_cores_scale_throughput():
    durations = {}
    for cores in (1, 4):
        loop = SimLoop()
        cpu = CpuPool(cores)

        async def main():
            await sim.gather(*[sim.spawn(cpu.execute(0.5)) for _ in range(16)])

        loop.run_until_complete(main())
        durations[cores] = loop.now
    assert durations[1] == pytest.approx(4 * durations[4])


def test_cpu_zero_cost_is_free():
    loop = SimLoop()
    cpu = CpuPool(1)

    async def main():
        await cpu.execute(0.0)
        return sim.now()

    assert loop.run_until_complete(main()) == 0.0
    assert cpu.jobs_executed == 0


def test_io_device_serializes_flushes():
    loop = SimLoop()
    disk = IoDevice(base_latency=0.01, per_byte=0.0)

    async def main():
        await sim.gather(*[sim.spawn(disk.flush(100)) for _ in range(5)])

    loop.run_until_complete(main())
    assert loop.now == pytest.approx(0.05)
    assert disk.flushes == 5
    assert disk.bytes_written == 500


def test_io_device_per_byte_charge():
    loop = SimLoop()
    disk = IoDevice(base_latency=0.001, per_byte=0.0001)

    async def main():
        await disk.flush(1000)
        return sim.now()

    assert loop.run_until_complete(main()) == pytest.approx(0.101)


def test_io_batched_write_cheaper_than_individual():
    """One flush of N records beats N flushes — the group-commit effect."""

    def run(sizes):
        loop = SimLoop()
        disk = IoDevice(base_latency=0.005, per_byte=1e-6)

        async def main():
            for size in sizes:
                await disk.flush(size)

        loop.run_until_complete(main())
        return loop.now

    individual = run([100] * 20)
    batched = run([100 * 20])
    assert batched < individual / 10


# ---------------------------------------------------------------------------
# cancellation while queued: permits must never leak
# ---------------------------------------------------------------------------


def test_cancelled_queued_waiter_does_not_eat_a_permit():
    """A task killed while queued on ``acquire`` abandons its waiter;
    ``release`` must skip it, not hand it the permit.  (Regression: a
    silo crash cancelling queued turn tasks leaked one CPU slot each,
    eventually wedging every later ``CpuPool.execute`` forever.)"""
    loop = SimLoop()
    semaphore = Semaphore(1)
    completions = []

    async def holder():
        async with semaphore:
            await sim.sleep(1)

    async def worker(name):
        async with semaphore:
            completions.append(name)

    async def main():
        hold = sim.spawn(holder())
        doomed = sim.spawn(worker("doomed"))
        survivor = sim.spawn(worker("survivor"))
        await sim.sleep(0.5)  # both workers are queued behind the holder
        doomed.cancel("killed while queued")
        await sim.gather(hold, survivor)
        # the released permit must reach the live waiter, then free up
        async with semaphore:
            completions.append("after")

    loop.run_until_complete(main())
    assert completions == ["survivor", "after"]
    assert semaphore.value == 1  # nothing leaked


def test_cancellation_racing_a_grant_passes_the_permit_on():
    """If the permit lands on a waiter in the same instant its task is
    cancelled, ``acquire`` hands the grant to the next waiter instead of
    swallowing it."""
    loop = SimLoop()
    semaphore = Semaphore(1)
    completions = []

    async def holder():
        async with semaphore:
            await sim.sleep(1)

    async def worker(name):
        async with semaphore:
            completions.append(name)

    async def main():
        hold = sim.spawn(holder())
        doomed = sim.spawn(worker("doomed"))
        survivor = sim.spawn(worker("survivor"))
        await sim.sleep(1)  # the holder releases *now*: grant in flight
        doomed.cancel("cancelled at the instant of the grant")
        await sim.gather(hold, survivor)
        return semaphore.value

    assert loop.run_until_complete(main()) == 1
    assert completions == ["survivor"]


def test_cpu_pool_survives_mass_cancellation_of_queued_work():
    """The resource-level consequence: cancelling a crowd of queued jobs
    leaves the pool at full capacity for later work."""
    loop = SimLoop()
    pool = CpuPool(2)

    async def main():
        tasks = [sim.spawn(pool.execute(1.0)) for _ in range(10)]
        await sim.sleep(0.5)  # 2 running, 8 queued
        for task in tasks[2:]:
            task.cancel("silo crash")
        await sim.gather(*tasks[:2])
        before = loop.now
        # the pool must still run 2-wide: 4 jobs in 2 seconds
        await sim.gather(*[sim.spawn(pool.execute(1.0)) for _ in range(4)])
        return loop.now - before

    assert loop.run_until_complete(main()) == 2.0
