"""Smoke tests: the example scripts run and print what they promise."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, timeout=240, args=()):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_quickstart_example():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "PACT transfer committed" in result.stdout
    assert "ACT transfer committed" in result.stdout
    assert "aborted as expected" in result.stdout


def test_failure_recovery_example():
    result = run_example("failure_recovery.py")
    assert result.returncode == 0, result.stderr
    assert "silo crash" in result.stdout
    assert "committed transactions survived" in result.stdout


def test_crash_recovery_example():
    result = run_example("crash_recovery.py")
    assert result.returncode == 0, result.stderr
    assert "presumed abort" in result.stdout
    assert "transfer preserved on both" in result.stdout
    assert "VERDICT: OK" in result.stdout


def test_multiserver_deployment_example():
    result = run_example("multiserver_deployment.py", args=("--quick",))
    assert result.returncode == 0, result.stderr
    assert "cross-silo msgs" in result.stdout
    # part 2: the pluggable-substrate comparison (docs/runtime.md) —
    # both backends run and commit identical balances
    assert "sim backend:" in result.stdout
    assert "asyncio backend:" in result.stdout
    assert "socket envelope" in result.stdout
    assert "backends agree" in result.stdout


@pytest.mark.slow
def test_hybrid_workload_example():
    result = run_example("hybrid_workload.py", timeout=600)
    assert result.returncode == 0, result.stderr
    assert "abort breakdown" in result.stdout


@pytest.mark.slow
def test_tpcc_example():
    result = run_example("tpcc_neworder.py", timeout=900)
    assert result.returncode == 0, result.stderr
    assert "orders inserted" in result.stdout


@pytest.mark.slow
def test_smallbank_comparison_example():
    result = run_example("smallbank_comparison.py", timeout=900)
    assert result.returncode == 0, result.stderr
    assert "engine" in result.stdout
