"""Tests for the transaction tracing facility (repro.trace)."""

import pytest

from repro import TransactionAbortedError
from repro.trace import TraceEvent, TxnTrace, TxnTracer

from tests.conftest import build_system


def traced_system(**kwargs):
    system = build_system(**kwargs)
    tracer = TxnTracer()
    system.runtime.services["txn_tracer"] = tracer
    return system, tracer


# ---------------------------------------------------------------------------
# unit level
# ---------------------------------------------------------------------------
def test_trace_event_ordering_and_durations():
    trace = TxnTrace(tid=1, mode="PACT")
    trace.events = [(0.0, "registered", None), (0.010, "committed", None)]
    assert trace.outcome == "committed"
    assert trace.duration("registered", "committed") == pytest.approx(0.010)
    assert trace.duration("registered", "nope") is None
    assert "committed" in trace.render()


def test_tracer_capacity_evicts_oldest():
    tracer = TxnTracer(capacity=3)
    for tid in range(5):
        tracer.record(0.0, tid, "registered")
    assert len(tracer) == 3
    assert tracer.trace_of(0) is None
    assert tracer.trace_of(4) is not None


def test_tracer_mean_duration():
    tracer = TxnTracer()
    tracer.record(0.0, 1, "a")
    tracer.record(0.2, 1, "b")
    tracer.record(1.0, 2, "a")
    tracer.record(1.4, 2, "b")
    assert tracer.mean_duration("a", "b") == pytest.approx(0.3)
    assert tracer.mean_duration("a", "zzz") is None


def test_trace_event_is_tuple_compatible():
    event = TraceEvent(1.5, "state_access", "ReadWrite",
                       tid=7, bid=3, actor="account/1",
                       access="ReadWrite", seq=42)
    # legacy (time, event, detail) unpacking and indexing
    when, name, detail = event
    assert (when, name, detail) == (1.5, "state_access", "ReadWrite")
    assert event[0] == 1.5 and event[1] == "state_access"
    assert len(event) == 3
    # positional aliases and enrichment attributes
    assert event.when == event.time == 1.5
    assert event.event == event.name == "state_access"
    assert (event.tid, event.bid, event.actor, event.access, event.seq) == (
        7, 3, "account/1", "ReadWrite", 42
    )


def test_trace_event_dict_round_trip():
    event = TraceEvent(1.0, "state_access", "Read",
                       tid=5, bid=2, actor="a/x", access="Read", seq=9)
    clone = TraceEvent.from_dict(event.to_dict())
    assert tuple(clone) == tuple(event)
    assert (clone.tid, clone.bid, clone.actor, clone.access, clone.seq) == (
        5, 2, "a/x", "Read", 9
    )


def test_record_enriched_fields_and_bid_capture():
    tracer = TxnTracer()
    tracer.record(0.0, 1, "registered", "bid=4", "PACT", bid=4, actor="a/1")
    tracer.record(0.1, 1, "state_access", "Read", bid=4, actor="a/1",
                  access="Read")
    trace = tracer.trace_of(1)
    assert trace.bid == 4
    events = tracer.all_events()
    assert [e.seq for e in events] == sorted(e.seq for e in events)
    access = events[-1]
    assert access.access == "Read" and access.actor == "a/1"


def test_all_events_wraps_legacy_tuples():
    tracer = TxnTracer()
    tracer.record(0.0, 1, "registered")
    tracer.traces[1].events.append((0.5, "committed", None))
    events = tracer.all_events()
    assert all(isinstance(e, TraceEvent) for e in events)
    assert {e.name for e in events} == {"registered", "committed"}
    assert all(e.tid == 1 for e in events)


def test_jsonl_round_trip(tmp_path):
    tracer = TxnTracer()
    tracer.record(0.0, 1, "registered", "bid=2", "PACT", bid=2, actor="a/1")
    tracer.record(0.1, 1, "state_access", "ReadWrite", bid=2, actor="a/1",
                  access="ReadWrite")
    tracer.record(0.2, 1, "committed")
    path = tmp_path / "trace.jsonl"
    assert tracer.dump_jsonl(str(path)) == 3
    loaded = TxnTracer.load_jsonl(str(path))
    assert len(loaded) == 1
    trace = loaded.trace_of(1)
    assert trace.mode == "PACT" and trace.bid == 2
    assert trace.event_names() == ["registered", "state_access", "committed"]
    access = loaded.all_events()[1]
    assert access.actor == "a/1" and access.access == "ReadWrite"


# ---------------------------------------------------------------------------
# wired into the engine
# ---------------------------------------------------------------------------
def test_pact_lifecycle_traced():
    system, tracer = traced_system()

    async def main():
        await system.submit_pact("account", 1, "deposit", 5.0, access={1: 1})

    system.run(main())
    committed = tracer.by_outcome("committed")
    assert len(committed) == 1
    trace = committed[0]
    assert trace.mode == "PACT"
    names = trace.event_names()
    assert names.index("registered") < names.index("turn_started")
    assert names.index("turn_started") < names.index("execution_done")
    assert names.index("execution_done") < names.index("committed")
    # batching delay shows up between registration and commit
    assert trace.duration("registered", "committed") > 0


def test_act_lifecycle_traced():
    system, tracer = traced_system()

    async def main():
        await system.submit_act("account", 1, "transfer", (5.0, 2))

    system.run(main())
    committed = tracer.by_outcome("committed")
    assert len(committed) == 1
    trace = committed[0]
    assert trace.mode == "ACT"
    names = trace.event_names()
    assert "admitted" in names
    assert "check_passed" in names
    assert names.index("execution_done") < names.index("check_passed")
    assert names[-1] == "committed"


def test_engine_emits_enriched_state_access_events():
    system, tracer = traced_system()

    async def main():
        await system.submit_pact("account", 1, "deposit", 5.0, access={1: 1})
        await system.submit_act("account", 1, "transfer", (5.0, 2))

    system.run(main())
    accesses = [e for e in tracer.all_events() if e.name == "state_access"]
    assert accesses, "engine should emit state_access events"
    assert all(e.actor is not None and e.access is not None
               for e in accesses)
    pact_accesses = [e for e in accesses if e.bid is not None]
    act_accesses = [e for e in accesses if e.bid is None]
    assert pact_accesses and act_accesses
    # the ACT's check_passed detail carries the BS/AS evidence
    act = next(t for t in tracer.traces.values() if t.mode == "ACT")
    check = act.first("check_passed")
    assert set(check[2]) == {"max_bs", "min_as"}


def test_aborted_act_traced_with_reason():
    system, tracer = traced_system()

    async def main():
        with pytest.raises(TransactionAbortedError):
            await system.submit_act("account", 1, "transfer", (1e9, 2))

    system.run(main())
    aborted = tracer.by_outcome("aborted")
    assert len(aborted) == 1
    _, _, reason = aborted[0].first("aborted")
    assert reason == "user_abort"


def test_tracing_absent_costs_nothing():
    system = build_system()
    assert "txn_tracer" not in system.runtime.services

    async def main():
        return await system.submit_pact(
            "account", 1, "deposit", 5.0, access={1: 1}
        )

    assert system.run(main()) == 105.0
