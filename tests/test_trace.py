"""Tests for the transaction tracing facility (repro.trace)."""

import pytest

from repro import TransactionAbortedError
from repro.trace import TxnTrace, TxnTracer

from tests.conftest import build_system


def traced_system(**kwargs):
    system = build_system(**kwargs)
    tracer = TxnTracer()
    system.runtime.services["txn_tracer"] = tracer
    return system, tracer


# ---------------------------------------------------------------------------
# unit level
# ---------------------------------------------------------------------------
def test_trace_event_ordering_and_durations():
    trace = TxnTrace(tid=1, mode="PACT")
    trace.events = [(0.0, "registered", None), (0.010, "committed", None)]
    assert trace.outcome == "committed"
    assert trace.duration("registered", "committed") == pytest.approx(0.010)
    assert trace.duration("registered", "nope") is None
    assert "committed" in trace.render()


def test_tracer_capacity_evicts_oldest():
    tracer = TxnTracer(capacity=3)
    for tid in range(5):
        tracer.record(0.0, tid, "registered")
    assert len(tracer) == 3
    assert tracer.trace_of(0) is None
    assert tracer.trace_of(4) is not None


def test_tracer_mean_duration():
    tracer = TxnTracer()
    tracer.record(0.0, 1, "a")
    tracer.record(0.2, 1, "b")
    tracer.record(1.0, 2, "a")
    tracer.record(1.4, 2, "b")
    assert tracer.mean_duration("a", "b") == pytest.approx(0.3)
    assert tracer.mean_duration("a", "zzz") is None


# ---------------------------------------------------------------------------
# wired into the engine
# ---------------------------------------------------------------------------
def test_pact_lifecycle_traced():
    system, tracer = traced_system()

    async def main():
        await system.submit_pact("account", 1, "deposit", 5.0, access={1: 1})

    system.run(main())
    committed = tracer.by_outcome("committed")
    assert len(committed) == 1
    trace = committed[0]
    assert trace.mode == "PACT"
    names = trace.event_names()
    assert names.index("registered") < names.index("turn_started")
    assert names.index("turn_started") < names.index("execution_done")
    assert names.index("execution_done") < names.index("committed")
    # batching delay shows up between registration and commit
    assert trace.duration("registered", "committed") > 0


def test_act_lifecycle_traced():
    system, tracer = traced_system()

    async def main():
        await system.submit_act("account", 1, "transfer", (5.0, 2))

    system.run(main())
    committed = tracer.by_outcome("committed")
    assert len(committed) == 1
    trace = committed[0]
    assert trace.mode == "ACT"
    names = trace.event_names()
    assert "admitted" in names
    assert "check_passed" in names
    assert names.index("execution_done") < names.index("check_passed")
    assert names[-1] == "committed"


def test_aborted_act_traced_with_reason():
    system, tracer = traced_system()

    async def main():
        with pytest.raises(TransactionAbortedError):
            await system.submit_act("account", 1, "transfer", (1e9, 2))

    system.run(main())
    aborted = tracer.by_outcome("aborted")
    assert len(aborted) == 1
    _, _, reason = aborted[0].first("aborted")
    assert reason == "user_abort"


def test_tracing_absent_costs_nothing():
    system = build_system()
    assert "txn_tracer" not in system.runtime.services

    async def main():
        return await system.submit_pact(
            "account", 1, "deposit", 5.0, access={1: 1}
        )

    assert system.run(main()) == 105.0
