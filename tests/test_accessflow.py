"""Interprocedural access-set inference + declaration verification.

Unit tests drive :mod:`repro.analysis.accessflow` over inline sources:
the inference half (key forwarding through helpers, diamond call
graphs, recursion, conditional calls, loops, ⊤ propagation) and the
verification half (under/over-declaration, count and mode claims,
``--fix`` rewrites, noqa suppression, CLI exit codes).
"""

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.accessflow import Inferencer, Program, verify_program
from repro.analysis.accessflow.infer import (
    HOST_KIND,
    READ,
    READ_WRITE,
    KeyKind,
)
from repro.analysis.accessflow.verify import apply_fixes

ACTOR_PRELUDE = '''
class FuncCall:
    def __init__(self, method, func_input=None):
        self.method = method
        self.func_input = func_input


class AccessMode:
    READ = "Read"
    READ_WRITE = "ReadWrite"
'''


def summarize(source, method, kind=None):
    program = Program.from_source(ACTOR_PRELUDE + source)
    summary = Inferencer(program).entry_summary(kind, method)
    assert summary is not None, f"no summary for {method}"
    return summary


def access_map(summary):
    """``describe_actor() -> Access`` for easy assertions."""
    return {a.describe_actor(): a for a in summary.accesses}


# -- inference ----------------------------------------------------------------

def test_entry_invocation_and_state_modes():
    summary = summarize('''
class A:
    async def balance(self, ctx, _input=None):
        return await self.get_state(ctx, AccessMode.READ)
''', "balance")
    accesses = access_map(summary)
    assert set(accesses) == {"self"}
    assert accesses["self"].count == 1  # the entry invocation
    assert accesses["self"].mode == READ
    assert summary.exhaustive


def test_literal_call_target_and_mode_join():
    summary = summarize('''
class A:
    async def deposit(self, ctx, money):
        state = await self.get_state(ctx)
        self._state = state + money

    async def feed(self, ctx, _input=None):
        await self.call_actor(
            ctx, self.ref("account", 7).id, FuncCall("deposit", 1.0)
        )
''', "feed")
    accesses = access_map(summary)
    target = accesses["account[7]"]
    assert target.count == 1
    assert target.mode == READ_WRITE  # callee writes its state
    assert accesses["self"].mode == READ  # feed itself never reads state
    assert summary.exhaustive


def test_key_forwarding_through_helpers():
    """A literal argument substitutes exactly through a same-actor
    helper and an actor-constructor helper."""
    summary = summarize('''
KIND = "account"

class A:
    def _acct(self, key):
        return self.ref(KIND, key).id

    async def pay(self, ctx, to_key):
        await self.call_actor(
            ctx, self._acct(to_key), FuncCall("deposit", 1.0)
        )

    async def deposit(self, ctx, money):
        state = await self.get_state(ctx)
        self._state = state + money

    async def settle(self, ctx, _input=None):
        await self.pay(ctx, "bob")
''', "settle")
    accesses = access_map(summary)
    bob = accesses["account['bob']"]
    assert bob.key.sort == KeyKind.LIT and bob.key.value == "bob"
    assert bob.count == 1 and bob.mode == READ_WRITE
    assert summary.exhaustive


def test_diamond_call_graph_counts_add():
    """settle -> left/right (helpers) -> the same literal actor: the
    two edges merge with counts added."""
    summary = summarize('''
class A:
    async def deposit(self, ctx, money):
        state = await self.get_state(ctx)
        self._state = state + money

    async def left(self, ctx, amount):
        await self.call_actor(
            ctx, self.ref("account", 9).id, FuncCall("deposit", amount)
        )

    async def right(self, ctx, amount):
        await self.call_actor(
            ctx, self.ref("account", 9).id, FuncCall("deposit", amount)
        )

    async def settle(self, ctx, _input=None):
        await self.left(ctx, 1.0)
        await self.right(ctx, 2.0)
''', "settle")
    accesses = access_map(summary)
    assert accesses["account[9]"].count == 2
    assert summary.exhaustive


def test_recursion_widens_summary():
    summary = summarize('''
class A:
    async def ping(self, ctx, n):
        if n > 0:
            await self.ping(ctx, n - 1)
        await self.call_actor(
            ctx, self.ref("account", 3).id, FuncCall("ping", n)
        )
''', "ping")
    assert summary.recursive
    assert not summary.exhaustive  # counts are lower bounds


def test_conditional_cross_actor_call():
    summary = summarize('''
class A:
    async def maybe(self, ctx, flag):
        if flag:
            await self.call_actor(
                ctx, self.ref("account", 5).id, FuncCall("noop")
            )

    async def noop(self, ctx, _input=None):
        return "ok"
''', "maybe")
    accesses = access_map(summary)
    assert accesses["account[5]"].conditional
    assert not accesses["self"].conditional  # entry is unconditional
    assert summary.exhaustive  # conditional != unresolvable


def test_loop_over_input_is_many():
    summary = summarize('''
class A:
    async def deposit(self, ctx, money):
        state = await self.get_state(ctx)
        self._state = state + money

    async def fan_out(self, ctx, keys):
        for key in keys:
            await self.call_actor(
                ctx, self.ref("account", key).id, FuncCall("deposit", 1.0)
            )
''', "fan_out")
    fanned = [a for a in summary.accesses if a.kind == "account"]
    assert len(fanned) == 1
    assert fanned[0].many and fanned[0].conditional
    assert fanned[0].key.sort == KeyKind.ARG


def test_top_propagation_from_opaque_call():
    """A FuncCall held in a variable makes the edge opaque: the summary
    carries an explicit ⊤ verdict instead of silently guessing."""
    summary = summarize('''
class A:
    async def run(self, ctx, txn_input):
        call = make_call(txn_input)
        await self.call_actor(
            ctx, self.ref("account", 1).id, call
        )
''', "run")
    assert summary.has_top
    assert not summary.exhaustive
    assert summary.opaque_lines


def test_top_key_from_unresolvable_expression():
    summary = summarize('''
class A:
    async def run(self, ctx, _input=None):
        await self.call_actor(
            ctx,
            self.ref("account", self._route()).id,
            FuncCall("noop"),
        )

    async def noop(self, ctx, _input=None):
        return "ok"
''', "run")
    tops = [a for a in summary.accesses if a.key.sort == KeyKind.TOP]
    assert tops, "unresolvable key must surface as ⊤, not disappear"
    assert summary.has_top


def test_entry_summary_merges_kind_candidates():
    source = ACTOR_PRELUDE + '''
class Reader:
    async def probe(self, ctx, _input=None):
        return await self.get_state(ctx, AccessMode.READ)


class Writer:
    async def probe(self, ctx, _input=None):
        state = await self.get_state(ctx)
        self._state = state + 1
'''
    program = Program.from_source(source)
    summary = Inferencer(program).entry_summary(None, "probe")
    # both candidates merged: the join must be ReadWrite
    assert access_map(summary)["self"].mode == READ_WRITE


# -- verification -------------------------------------------------------------

SITE_PRELUDE = ACTOR_PRELUDE + '''
class TxnRequest:
    @classmethod
    def pact(cls, kind, key, method, func_input=None, *, access):
        return (kind, key, method, func_input, access)


class Account:
    async def balance(self, ctx, _input=None):
        return await self.get_state(ctx, AccessMode.READ)

    async def deposit(self, ctx, money):
        state = await self.get_state(ctx)
        self._state = state + money

    async def transfer(self, ctx, txn_input):
        state = await self.get_state(ctx)
        self._state = state - txn_input
        await self.call_actor(
            ctx, self.ref("account", 2).id, FuncCall("deposit", txn_input)
        )

    async def double(self, ctx, txn_input):
        state = await self.get_state(ctx)
        self._state = state - txn_input
        target = self.ref("account", 2).id
        await self.call_actor(ctx, target, FuncCall("deposit", 1.0))
        await self.call_actor(ctx, target, FuncCall("deposit", 2.0))
'''


def verify_source(source):
    program = Program.from_source(SITE_PRELUDE + source)
    return program, verify_program(program)


def rules_of(findings):
    return [(f.severity, f.rule) for f in findings]


def test_under_declaration_is_an_error():
    _, findings = verify_source('''
req = TxnRequest.pact("account", 1, "transfer", 10.0, access={1: 1})
''')
    assert ("error", "under-declared") in rules_of(findings)
    assert any("account/2" in f.message for f in findings)


def test_correct_declaration_is_clean():
    _, findings = verify_source('''
req = TxnRequest.pact("account", 1, "transfer", 10.0,
                      access={1: 1, 2: 1})
''')
    assert findings == []


def test_over_declaration_is_a_warning():
    _, findings = verify_source('''
req = TxnRequest.pact("account", 1, "deposit", 10.0,
                      access={1: 1, 3: 1})
''')
    assert rules_of(findings) == [("warning", "over-declared")]


def test_mode_downgrade_is_an_error():
    _, findings = verify_source('''
req = TxnRequest.pact("account", 1, "deposit", 10.0, access={1: "r"})
''')
    assert ("error", "mode-downgrade") in rules_of(findings)


def test_mode_over_claims_read_parallelism():
    _, findings = verify_source('''
req = TxnRequest.pact("account", 1, "balance", access={1: 1})
''')
    assert rules_of(findings) == [("warning", "mode-over")]


def test_count_shortfall_is_an_error():
    _, findings = verify_source('''
req = TxnRequest.pact("account", 1, "double", 5.0,
                      access={1: 1, 2: 1})
''')
    assert ("error", "count-shortfall") in rules_of(findings)


def test_count_exact_is_clean():
    _, findings = verify_source('''
req = TxnRequest.pact("account", 1, "double", 5.0,
                      access={1: 1, 2: 2})
''')
    assert findings == []


def test_dynamic_declared_keys_disable_under_claims():
    _, findings = verify_source('''
def build(key):
    return TxnRequest.pact("account", 1, "transfer", 10.0,
                           access={1: 1, key: 1})
''')
    assert not any(f.severity == "error" for f in findings)


def test_noqa_suppresses_site():
    _, findings = verify_source('''
req = TxnRequest.pact(  # snapper: noqa
    "account", 1, "transfer", 10.0, access={1: 1})
''')
    assert findings == []


def test_top_summary_yields_note_not_silence():
    _, findings = verify_source('''
class Router:
    async def route(self, ctx, txn_input):
        call = pick(txn_input)
        await self.call_actor(ctx, self.ref("account", 1).id, call)

req = TxnRequest.pact("account", 1, "route", None, access={1: 1})
''')
    assert ("note", "unverifiable") in rules_of(findings)


def test_fix_rewrites_access_dict(tmp_path):
    path = tmp_path / "workload.py"
    path.write_text(SITE_PRELUDE + '''
req = TxnRequest.pact("account", 1, "double", 5.0,
                      access={1: 1, 2: 1, 3: 1})
''', encoding="utf-8")
    program = Program.load([str(path)])
    findings = verify_program(program)
    assert any(f.fixable for f in findings)
    applied = apply_fixes(program, findings)
    assert applied == {str(path): 1}
    # the rewritten declaration verifies clean
    program = Program.load([str(path)])
    assert verify_program(program) == []
    assert "access={1: 1, 2: 2}" in path.read_text(encoding="utf-8")


def test_fix_downgrades_readonly_to_r(tmp_path):
    path = tmp_path / "workload.py"
    path.write_text(SITE_PRELUDE + '''
req = TxnRequest.pact("account", 1, "balance", access={1: 1, 9: 1})
''', encoding="utf-8")
    program = Program.load([str(path)])
    applied = apply_fixes(program, verify_program(program))
    assert applied == {str(path): 1}
    assert 'access={1: "r"}' in path.read_text(encoding="utf-8")


# -- CLI ----------------------------------------------------------------------

def write_site(tmp_path, body):
    path = tmp_path / "site.py"
    path.write_text(SITE_PRELUDE + body, encoding="utf-8")
    return str(path)


def test_cli_verify_exit_codes(tmp_path, capsys):
    bad = write_site(tmp_path, '''
req = TxnRequest.pact("account", 1, "transfer", 10.0, access={1: 1})
''')
    assert analysis_main(["verify", bad]) == 1
    out = capsys.readouterr().out
    assert "under-declared" in out and "error" in out

    good = write_site(tmp_path, '''
req = TxnRequest.pact("account", 1, "transfer", 10.0,
                      access={1: 1, 2: 1})
''')
    assert analysis_main(["verify", good]) == 0


def test_cli_verify_strict_elevates_warnings(tmp_path):
    over = write_site(tmp_path, '''
req = TxnRequest.pact("account", 1, "deposit", 10.0,
                      access={1: 1, 3: 1})
''')
    assert analysis_main(["verify", over]) == 0
    assert analysis_main(["verify", over, "--strict"]) == 1


def test_cli_verify_fix_then_clean(tmp_path, capsys):
    path = write_site(tmp_path, '''
req = TxnRequest.pact("account", 1, "double", 5.0, access={1: 1, 2: 1})
''')
    assert analysis_main(["verify", path, "--fix"]) == 0
    capsys.readouterr()
    assert analysis_main(["verify", path, "--strict"]) == 0


def test_cli_infer_lists_entry_points(tmp_path, capsys):
    path = write_site(tmp_path, "")
    assert analysis_main(["infer", path, "--method", "transfer"]) == 0
    out = capsys.readouterr().out
    assert "account[2]" in out and "mode=ReadWrite" in out


def test_cli_repo_wide_verify_gate():
    """The CI gate: verify runs clean (no errors/warnings) repo-wide."""
    import pathlib

    root = pathlib.Path(__file__).parent.parent
    code = analysis_main([
        "verify",
        str(root / "src"), str(root / "examples"), str(root / "tests"),
        "--strict", "--exclude", "tests/fixtures",
    ])
    assert code == 0
