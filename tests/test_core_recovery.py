"""Failure injection and recovery tests (§4.2.5, §4.3.4, §4.4.5)."""

import pytest

from repro import TransactionAbortedError
from repro.errors import ActorCrashedError
from repro.sim import spawn

from tests.conftest import build_system


def test_actor_crash_recovers_committed_state():
    """A crashed actor re-activates with its last committed state."""
    system = build_system()

    async def main():
        await system.submit_pact("account", 1, "deposit", 42.0, access={1: 1})
        assert system.crash_actor("account", 1)
        # next access transparently re-activates and recovers from the WAL
        return await system.submit_act("account", 1, "balance")

    assert system.run(main()) == 142.0


def test_actor_crash_loses_uncommitted_act_writes():
    system = build_system()

    async def main():
        await system.submit_act("account", 1, "deposit", 10.0)
        system.crash_actor("account", 1)
        return await system.submit_act("account", 1, "balance")

    assert system.run(main()) == 110.0


def test_crash_without_logging_resets_state():
    """With logging disabled there is nothing to recover from."""
    system = build_system(logging_enabled=False)

    async def main():
        await system.submit_pact("account", 1, "deposit", 42.0, access={1: 1})
        system.crash_actor("account", 1)
        return await system.submit_act("account", 1, "balance")

    assert system.run(main()) == 100.0


def test_silo_crash_and_recover_preserves_committed_only():
    """Full-system crash: committed transactions survive; in-flight ones
    are resolved by the recovery rules (§4.2.4 commit rule, presumed
    abort for ACTs)."""
    system = build_system()

    async def phase1():
        await system.submit_pact(
            "account", 1, "transfer", (30.0, 2), access={1: 1, 2: 1}
        )
        await system.submit_act("account", 3, "deposit", 5.0)

    system.run(phase1())
    system.crash_silo()

    async def phase2():
        await system.recover()
        return [
            await system.submit_act("account", k, "balance") for k in (1, 2, 3)
        ]

    assert system.run(phase2()) == [70.0, 130.0, 105.0]


def test_recovery_commits_fully_voted_batch():
    """A batch whose every participant logged BatchComplete commits
    during recovery even though BatchCommit was never written."""
    from repro.persistence.records import (
        BatchCommitRecord,
        BatchCompleteRecord,
        BatchInfoRecord,
    )
    from repro.actors.ref import ActorId

    system = build_system()
    actor1 = ActorId("account", 1)

    async def seed_log():
        # Simulate a crash after all votes were logged: BatchInfo +
        # BatchComplete present, BatchCommit absent.
        await system.loggers.persist(
            "coord", BatchInfoRecord(bid=500, coordinator=0,
                                     participants=(actor1,))
        )
        await system.loggers.persist(
            actor1, BatchCompleteRecord(bid=500, actor=actor1, state=777.0)
        )
        await system.recover()
        return await system.submit_act("account", 1, "balance")

    assert system.run(seed_log()) == 777.0
    commits = [
        r for r in system.loggers.all_records()
        if isinstance(r, BatchCommitRecord) and r.bid == 500
    ]
    assert len(commits) == 1


def test_recovery_aborts_partially_voted_batch():
    """A batch missing votes is presumed aborted: its state is not
    restored."""
    from repro.persistence.records import BatchCompleteRecord, BatchInfoRecord
    from repro.actors.ref import ActorId

    system = build_system()
    actor1 = ActorId("account", 1)
    actor2 = ActorId("account", 2)

    async def seed_log():
        await system.loggers.persist(
            "coord",
            BatchInfoRecord(bid=500, coordinator=0,
                            participants=(actor1, actor2)),
        )
        # only actor1 voted before the crash
        await system.loggers.persist(
            actor1, BatchCompleteRecord(bid=500, actor=actor1, state=777.0)
        )
        await system.recover()
        return await system.submit_act("account", 1, "balance")

    assert system.run(seed_log()) == 100.0  # initial state, not 777


def test_recovery_restores_latest_of_batch_and_act_state():
    """Recovery picks the *latest* committed state record by LSN, whether
    it came from a batch or an ACT."""
    system = build_system()

    async def main():
        await system.submit_pact("account", 4, "deposit", 10.0, access={4: 1})
        await system.submit_act("account", 4, "deposit", 20.0)

    system.run(main())
    system.crash_silo()

    async def after():
        await system.recover()
        return await system.submit_act("account", 4, "balance")

    assert system.run(after()) == 130.0


def test_inflight_transactions_fail_on_silo_crash_then_new_ones_work():
    system = build_system()
    failures = []

    async def main():
        job = spawn(
            system.submit_pact(
                "account", 1, "transfer", (10.0, 2), access={1: 1, 2: 1}
            )
        )
        from repro import sim

        # crash once the start_txn turn is running (after ~200us delivery)
        await sim.sleep(0.0006)
        system.crash_silo()
        try:
            await job
        except (TransactionAbortedError, ActorCrashedError, Exception) as exc:
            failures.append(type(exc).__name__)
        await system.recover()
        return await system.submit_act("account", 5, "deposit", 1.0)

    assert system.run(main()) == 101.0
    assert failures, "the in-flight transaction must not silently succeed"


def test_recovered_token_continues_pact_processing():
    """After recovery the fresh token keeps assigning increasing tids."""
    system = build_system()

    async def phase1():
        await system.submit_pact("account", 1, "deposit", 1.0, access={1: 1})

    system.run(phase1())
    system.crash_silo()

    async def phase2():
        await system.recover()
        for _ in range(3):
            await system.submit_pact("account", 1, "deposit", 1.0, access={1: 1})
        return await system.submit_act("account", 1, "balance")

    assert system.run(phase2()) == 104.0


def test_participant_crash_aborts_act_2pc():
    """A 2PC participant crash fails the ACT, not the system."""
    system = build_system()
    from repro import FuncCall, sim
    from tests.conftest import AccountActor

    async def slow_transfer(self, ctx, txn_input):
        money, to_key = txn_input
        state = await self.get_state(ctx)
        self._state = state - money
        await self.call_actor(
            ctx, self.ref("account", to_key).id, FuncCall("deposit", money)
        )
        await sim.sleep(0.01)  # window for the crash before 2PC
        return self._state

    AccountActor.slow_transfer = slow_transfer
    try:
        async def main():
            job = spawn(
                system.submit_act("account", 1, "slow_transfer", (10.0, 2))
            )
            await sim.sleep(0.005)
            system.crash_actor("account", 2)
            with pytest.raises(Exception):
                await job
            b1 = await system.submit_act("account", 1, "balance")
            b2 = await system.submit_act("account", 2, "balance")
            return b1, b2

        b1, b2 = system.run(main())
        assert b1 == 100.0  # rolled back
        assert b2 == 100.0  # recovered initial state
    finally:
        del AccountActor.slow_transfer
