"""Durability demo: crash the whole silo, recover from the WAL.

Commits a few transactions, crashes every actor and coordinator (the
token dies with them), then runs Snapper's recovery (§4.2.5): in-doubt
batches commit iff every participant logged BatchComplete, in-doubt
ACTs are presumed aborted, actors reload their last committed state
lazily, and a fresh fenced token restarts the ring.

Run:  python examples/failure_recovery.py
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from quickstart import AccountActor  # noqa: E402

from repro import SnapperSystem, TxnRequest  # noqa: E402


def main() -> None:
    system = SnapperSystem(seed=7)
    system.register_actor("account", AccountActor)
    system.start()

    async def before_crash():
        await system.submit(TxnRequest.pact(
            "account", "alice", "transfer", (25.0, "bob"),
            access={"alice": 1, "bob": 1},
        ))
        await system.submit(
            TxnRequest.act("account", "carol", "deposit", 50.0)
        )
        return [
            await system.submit(TxnRequest.act("account", name, "balance"))
            for name in ("alice", "bob", "carol")
        ]

    balances = system.run(before_crash())
    print(f"committed state before crash: alice={balances[0]:.0f} "
          f"bob={balances[1]:.0f} carol={balances[2]:.0f}")
    records = system.stats()["log_records"]
    print(f"WAL contains {records} records")

    killed = system.crash_silo()
    print(f"\n*** silo crash: {killed} activations lost their memory ***\n")

    async def after_recovery():
        await system.recover()
        balances = [
            await system.submit(TxnRequest.act("account", name, "balance"))
            for name in ("alice", "bob", "carol")
        ]
        # and the system keeps processing new transactions
        await system.submit(TxnRequest.pact(
            "account", "bob", "transfer", (10.0, "carol"),
            access={"bob": 1, "carol": 1},
        ))
        final = [
            await system.submit(TxnRequest.act("account", name, "balance"))
            for name in ("alice", "bob", "carol")
        ]
        return balances, final

    recovered, final = system.run(after_recovery())
    print(f"recovered state:  alice={recovered[0]:.0f} "
          f"bob={recovered[1]:.0f} carol={recovered[2]:.0f}")
    assert recovered == balances, "committed state must survive the crash"
    print(f"post-recovery txn: alice={final[0]:.0f} "
          f"bob={final[1]:.0f} carol={final[2]:.0f}")
    print("\ncommitted transactions survived; the system kept going.")


if __name__ == "__main__":
    main()
