"""Observability and retries: tracing transactions, retrying wait-die
victims.

Installs a TxnTracer, runs a contended hybrid workload with client-side
retries, and prints per-transaction timelines plus aggregate phase
durations — the debugging workflow a Snapper user would follow.

Run:  python examples/tracing_and_retries.py
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from quickstart import AccountActor  # noqa: E402

from repro import RetryPolicy, SnapperSystem, TxnRequest  # noqa: E402
from repro.runtime.kernel import gather, sleep, spawn  # noqa: E402
from repro.trace import TxnTracer  # noqa: E402


def main() -> None:
    system = SnapperSystem(seed=99)
    tracer = TxnTracer()
    system.runtime.services["txn_tracer"] = tracer
    system.register_actor("account", AccountActor)
    system.start()

    async def worker(i):
        # everyone hammers the same two accounts: wait-die will bite,
        # retries recover
        await sleep(0.0002 * i)
        source, target = ("hot-a", "hot-b") if i % 2 else ("hot-b", "hot-a")
        await system.submit(TxnRequest.act(
            "account", source, "transfer", (1.0, target),
            retry=RetryPolicy(max_attempts=15),
        ))

    async def scenario():
        await gather(*[spawn(worker(i)) for i in range(10)])
        # and a few PACTs for a hybrid trace
        for i in range(3):
            await system.submit(TxnRequest.pact(
                "account", "hot-a", "deposit", 1.0, access={"hot-a": 1}
            ))

    system.run(scenario())

    committed = tracer.by_outcome("committed")
    aborted = tracer.by_outcome("aborted")
    print(f"{len(committed)} committed, {len(aborted)} aborted "
          "(wait-die victims, recovered by retries)\n")

    print("--- one committed ACT timeline ---")
    act_trace = next(t for t in committed if t.mode == "ACT")
    print(act_trace.render())

    print("\n--- one committed PACT timeline ---")
    pact_trace = next(t for t in committed if t.mode == "PACT")
    print(pact_trace.render())

    if aborted:
        print("\n--- one wait-die victim ---")
        print(aborted[0].render())

    exec_ms = tracer.mean_duration("registered", "execution_done")
    commit_ms = tracer.mean_duration("execution_done", "committed")
    print(
        f"\nmean registered->executed: {exec_ms * 1000:.2f} ms, "
        f"executed->committed: {commit_ms * 1000:.2f} ms"
    )

    balances_ok = system.run(
        system.submit(TxnRequest.act("account", "hot-a", "balance"))
    ) + system.run(
        system.submit(TxnRequest.act("account", "hot-b", "balance"))
    )
    print(f"total money across hot accounts: {balances_ok:.0f} "
          "(conserved, plus the three deposits)")


if __name__ == "__main__":
    main()
