"""TPC-C NewOrder on actors (Fig. 18's partitioning).

Builds two warehouses — each a constellation of warehouse / district /
customer / stock-partition / order-partition actors plus shared
read-only item partitions — and runs NewOrder transactions as PACTs
and as ACTs, printing throughput and the order books.

Run:  python examples/tpcc_neworder.py
"""

import random

from repro.experiments.tables import format_table
from repro.workloads.runner import EngineRunner, run_epochs
from repro.workloads.tpcc import TpccLayout, TpccWorkload, tpcc_actor_families


def run_engine(engine: str, layout: TpccLayout) -> dict:
    runner = EngineRunner(engine, tpcc_actor_families(), seed=5)
    workload = TpccWorkload(layout, rng=random.Random(9))
    result = run_epochs(
        runner, workload.next_txn,
        num_clients=1, pipeline_size=4 if engine == "act" else 16,
        epochs=3, epoch_duration=0.3, warmup_epochs=1,
    )
    summary = result.metrics.summary()

    # peek into an order actor to show the inserted orders
    orders = 0
    for activation in runner.system.runtime._activations.values():
        actor = activation.actor
        if actor.id.kind == "order":
            orders += len(actor._state["orders"])
    return {
        "engine": engine,
        "tps": summary["throughput"],
        "p50_ms": summary["p50_ms"],
        "abort": summary["abort_rate"],
        "orders_inserted": orders,
    }


def main() -> None:
    layout = TpccLayout(num_warehouses=2, order_partitions=10)
    rows = []
    for engine in ("pact", "act", "nt"):
        print(f"running TPC-C NewOrder under {engine} ...")
        rows.append(run_engine(engine, layout))
    print()
    print(format_table(
        ["engine", "tps", "p50 ms", "abort%", "orders inserted"],
        [[r["engine"], r["tps"], f"{r['p50_ms']:.2f}", f"{r['abort']:.1%}",
          r["orders_inserted"]] for r in rows],
    ))
    print(
        "\nEvery NewOrder touches ~15 actors (district, warehouse, "
        "customer, item, stock and\norder partitions); the access set is "
        "computable from the inputs, which is what\nmakes the PACT mode "
        "possible (§5.4.2)."
    )


if __name__ == "__main__":
    main()
