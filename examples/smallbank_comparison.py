"""SmallBank MultiTransfer: PACT vs ACT vs OrleansTxn vs NT.

Runs the paper's core comparison (a miniature Fig. 14 slice) on a
uniform and a highly skewed workload and prints the throughput /
latency / abort-rate table.

Run:  python examples/smallbank_comparison.py
"""

import random

from repro.experiments.tables import format_table
from repro.workloads.distributions import make_distribution
from repro.workloads.runner import EngineRunner, run_epochs
from repro.workloads.smallbank import (
    ACCOUNT_KIND,
    NTAccountActor,
    OrleansAccountActor,
    SmallBankWorkload,
    SnapperAccountActor,
)

FAMILIES = {
    "snapper": {ACCOUNT_KIND: SnapperAccountActor},
    "nt": {ACCOUNT_KIND: NTAccountActor},
    "orleans": {ACCOUNT_KIND: OrleansAccountActor},
}
PIPELINES = {"nt": 64, "pact": 64, "act": 16, "orleans": 16}


def run_one(engine: str, skew: str) -> dict:
    runner = EngineRunner(engine, FAMILIES, seed=1)
    distribution = make_distribution(skew, 2_000, runner.loop.rng)
    workload = SmallBankWorkload(
        distribution, txn_size=4, rng=random.Random(7)
    )
    result = run_epochs(
        runner,
        workload.next_txn,
        num_clients=1,
        pipeline_size=PIPELINES[engine],
        epochs=3,
        epoch_duration=0.4,
        warmup_epochs=1,
    )
    summary = result.metrics.summary()
    return {
        "engine": engine,
        "skew": skew,
        "tps": summary["throughput"],
        "p50_ms": summary["p50_ms"],
        "p90_ms": summary["p90_ms"],
        "abort": summary["abort_rate"],
    }


def main() -> None:
    rows = []
    for skew in ("uniform", "very_high"):
        for engine in ("nt", "pact", "act", "orleans"):
            print(f"running {engine} / {skew} ...")
            rows.append(run_one(engine, skew))
    print()
    print(format_table(
        ["engine", "skew", "tps", "p50 ms", "p90 ms", "abort%"],
        [[r["engine"], r["skew"], r["tps"], f"{r['p50_ms']:.2f}",
          f"{r['p90_ms']:.2f}", f"{r['abort']:.1%}"] for r in rows],
    ))
    print(
        "\nThe paper's headline should be visible: PACT holds (or gains) "
        "throughput under skew\nwhile ACT and OrleansTxn collapse, and "
        "OrleansTxn trails ACT (§5.2.2)."
    )


if __name__ == "__main__":
    main()
