"""Quickstart: define a transactional actor, run PACTs and ACTs.

This mirrors the paper's Figs. 1-2: an ``AccountActor`` whose state is
its balance, a ``transfer`` that withdraws locally and deposits on
another actor, and a client that submits the same transaction first as
a PACT (pre-declared actor accesses) and then as an ACT.

Run:  python examples/quickstart.py
"""

from repro import (
    AccessMode,
    FuncCall,
    SnapperSystem,
    TransactionAbortedError,
    TransactionalActor,
    TxnRequest,
)


class AccountActor(TransactionalActor):
    """One bank account per actor; the state blob holds the balance.

    All mutation goes through the ``get_state`` handle — reassigning
    ``self._state`` directly would bypass the transactional write
    tracking (snapper-lint rule SNAP010).
    """

    def initial_state(self) -> dict:
        return {"balance": 100.0}

    async def balance(self, ctx, _input=None) -> float:
        state = await self.get_state(ctx, AccessMode.READ)
        return state["balance"]

    async def deposit(self, ctx, money: float) -> float:
        state = await self.get_state(ctx, AccessMode.READ_WRITE)
        state["balance"] += money
        return state["balance"]

    async def transfer(self, ctx, txn_input) -> float:
        """Withdraw here, deposit on the target account (Fig. 2)."""
        money, to_account = txn_input
        state = await self.get_state(ctx, AccessMode.READ_WRITE)
        if state["balance"] < money:
            raise ValueError("balance insufficient")
        state["balance"] -= money
        await self.call_actor(
            ctx, self.ref("account", to_account).id, FuncCall("deposit", money)
        )
        return state["balance"]


def main() -> None:
    system = SnapperSystem(seed=42)
    system.register_actor("account", AccountActor)
    system.start()

    async def scenario():
        # --- a PACT: the accessed actors and counts are pre-declared ----
        balance = await system.submit(TxnRequest.pact(
            "account", "alice", "transfer", (30.0, "bob"),
            access={"alice": 1, "bob": 1},
        ))
        print(f"PACT transfer committed; alice's balance: {balance:.2f}")

        # --- the same transaction as an ACT: no pre-declaration ---------
        balance = await system.submit(TxnRequest.act(
            "account", "alice", "transfer", (20.0, "carol")
        ))
        print(f"ACT transfer committed;  alice's balance: {balance:.2f}")

        # --- user aborts roll everything back ----------------------------
        try:
            await system.submit(TxnRequest.act(
                "account", "alice", "transfer", (1_000.0, "bob")
            ))
        except TransactionAbortedError as exc:
            print(f"over-withdrawal aborted as expected ({exc.reason})")

        for name in ("alice", "bob", "carol"):
            balance = await system.submit(
                TxnRequest.act("account", name, "balance")
            )
            print(f"  {name:5s}: {balance:7.2f}")

    system.run(scenario())
    stats = system.stats()
    print(
        f"\nsimulated {system.loop.now * 1000:.1f} ms; "
        f"{stats['messages_sent']} messages, "
        f"{stats['log_records']} log records, "
        f"{stats['batches_committed']} PACT batches committed"
    )


if __name__ == "__main__":
    main()
