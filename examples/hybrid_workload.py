"""Hybrid execution: PACTs and ACTs concurrently on the same actors.

Demonstrates the paper's §4.4: a 90%-PACT / 10%-ACT SmallBank mix under
a skewed workload, reporting the two modes' throughput and latency
separately plus the abort-reason breakdown of Fig. 16c — including the
serializability-check aborts unique to hybrid execution.

Run:  python examples/hybrid_workload.py
"""

import random

from repro.errors import AbortReason
from repro.experiments.tables import format_table
from repro.workloads.distributions import make_distribution
from repro.workloads.runner import EngineRunner, run_epochs
from repro.workloads.smallbank import (
    ACCOUNT_KIND,
    SmallBankWorkload,
    SnapperAccountActor,
)

REASON_LABELS = {
    AbortReason.ACT_CONFLICT: "(1) ACT-ACT conflict (wait-die)",
    AbortReason.HYBRID_DEADLOCK: "(2) PACT-ACT deadlock (timeout)",
    AbortReason.INCOMPLETE_AFTER_SET: "(3) incomplete AfterSet",
    AbortReason.SERIALIZABILITY: "(4) serializability violation",
    AbortReason.CASCADING: "cascading",
    AbortReason.USER_ABORT: "user abort",
}


def main() -> None:
    runner = EngineRunner(
        "hybrid", {"snapper": {ACCOUNT_KIND: SnapperAccountActor}}, seed=11
    )
    distribution = make_distribution("high", 2_000, runner.loop.rng)
    workload = SmallBankWorkload(
        distribution, txn_size=4, pact_fraction=0.9, rng=random.Random(3)
    )
    print("running a 90% PACT / 10% ACT mix under high skew ...")
    result = run_epochs(
        runner, workload.next_txn,
        num_clients=2, pipeline_size=16,
        epochs=4, epoch_duration=0.5, warmup_epochs=1,
    )
    metrics = result.metrics

    print()
    print(format_table(
        ["mode", "tps", "p50 ms", "p90 ms"],
        [
            ["PACT", metrics.throughput_of("pact"),
             f"{metrics.latency_percentiles((50,), 'pact')[50] * 1000:.2f}",
             f"{metrics.latency_percentiles((90,), 'pact')[90] * 1000:.2f}"],
            ["ACT", metrics.throughput_of("act"),
             f"{metrics.latency_percentiles((50,), 'act')[50] * 1000:.2f}",
             f"{metrics.latency_percentiles((90,), 'act')[90] * 1000:.2f}"],
            ["total", metrics.throughput, "", ""],
        ],
    ))

    print("\nabort breakdown (fraction of attempted transactions):")
    breakdown = metrics.abort_breakdown()
    for reason, fraction in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        label = REASON_LABELS.get(reason, reason)
        print(f"  {label:35s} {fraction:6.2%}")
    if not breakdown:
        print("  (none)")
    print(
        "\nPACTs never appear above: deterministic ordering means they "
        "cannot abort on conflicts (§3.1);\nhybrid serializability is "
        "enforced by aborting ACTs only (§4.4.3)."
    )


if __name__ == "__main__":
    main()
