"""Chaos demo: pinned crash windows, presumed abort, and the oracle.

Three acts (see docs/chaos.md):

1. Crash the silo *inside* the 2PC in-doubt window — right after the
   coordinator's prepare record became durable, before any commit
   record.  Recovery must presume abort: the transfer survives nowhere.
2. Crash right *after* the commit record.  The decision is durable, so
   recovery must keep the transfer on every participant — even though
   the client only saw a crash.

Both windows run over *file-backed* WALs (``SnapperConfig(log_dir=...)``
/ ``FileLogStorage``): the recovered states are reconstructed from real
pickled log files, exactly what survives a process crash.
3. Run a whole seeded fault schedule (crashes, message faults, torn
   WAL writes) under the marker workload and let the chaos oracle audit
   the recovered deployment against invariants C1-C7.

Run:  python examples/crash_recovery.py
"""

import os
import tempfile

from repro.actors.ref import ActorId
from repro.actors.runtime import SiloConfig
from repro.api import TxnRequest
from repro.chaos.harness import ChaosHarness
from repro.chaos.injector import ChaosInjector
from repro.chaos.oracle import recovered_states
from repro.chaos.plan import FaultKind, FaultPlan, FaultSpec
from repro.chaos.workload import CHAOS_ACCOUNT_KIND, ChaosAccountActor
from repro.core.config import SnapperConfig
from repro.core.system import SnapperSystem


def crash_window_demo(record_kind: str, log_dir: str) -> dict:
    """One cross-actor ACT over file-backed WALs; the silo crashes right
    after ``record_kind`` becomes durable; the injector recovers; return
    the states recovery reconstructs from the on-disk logs."""
    plan = FaultPlan(seed=1, duration=1.0, faults=[
        FaultSpec(at=0.0, kind=FaultKind.CRASH_ON_RECORD,
                  target=record_kind, arg=1),
    ])
    system = SnapperSystem(
        config=SnapperConfig(log_dir=log_dir), silo=SiloConfig(seed=1), seed=1
    )
    system.register_actor(CHAOS_ACCOUNT_KIND, ChaosAccountActor)
    injector = ChaosInjector(system, plan)
    system.start()
    injector.attach()

    async def client():
        try:
            await system.submit(TxnRequest.act(
                CHAOS_ACCOUNT_KIND, 0, "chaos_transfer", ("marker", 5.0, (1,))
            ))
        except Exception as exc:  # noqa: BLE001 - the crash is the point
            print(f"  client observed: {type(exc).__name__} (in doubt)")
        else:
            print("  client observed: committed")

    system.loop.create_task(client(), label="client")
    system.loop.run(until=1.0)
    injector.detach()
    assert injector.stats["record_triggers"] == 1, "crash window missed"
    states = recovered_states(
        system.loggers,
        [ActorId(CHAOS_ACCOUNT_KIND, key) for key in (0, 1)],
    )
    system.shutdown()
    return {aid.key: state for aid, state in states.items()}


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="snapper-chaos-") as tmp:
        print("1. crash inside the 2PC in-doubt window "
              "(after CoordPrepareRecord, §4.3.4)")
        states = crash_window_demo(
            "CoordPrepareRecord", os.path.join(tmp, "in-doubt")
        )
        survivors = [k for k, s in states.items() if "marker" in s["applied"]]
        assert not survivors, "presumed abort must erase the transfer"
        print(f"  recovery presumed abort: transfer durable on "
              f"{len(survivors)} of 2 actors; balances "
              f"{[s['balance'] for s in states.values()]}")

        print("\n2. crash right after the commit decision (CoordCommitRecord)")
        states = crash_window_demo(
            "CoordCommitRecord", os.path.join(tmp, "decided")
        )
        survivors = [k for k, s in states.items() if "marker" in s["applied"]]
        assert len(survivors) == 2, "a durable decision must survive the crash"
        print(f"  commit decision was durable: transfer preserved on both "
              f"actors; balances {[s['balance'] for s in states.values()]}")

    print("\n3. a full seeded fault schedule, audited by the oracle")
    plan = FaultPlan.generate(7, duration=0.5)
    print(f"  plan: {sum(plan.counts().values())} faults "
          + " ".join(f"{kind}={n}" for kind, n in sorted(
              plan.counts().items())))
    report = ChaosHarness(plan).run()
    print("  " + report.render().replace("\n", "\n  "))
    assert report.ok, "every invariant must hold under the fault schedule"
    print("\nall invariants held: committed work survived, aborted work "
          "vanished,\nmoney was conserved, and the recovered system "
          "stayed live.")


if __name__ == "__main__":
    main()
