"""Multi-server deployment (the paper's §7 future work, implemented).

Runs the same SmallBank workload on 1, 2, and 4 silos and compares the
two coordinator-placement policies §7 says must be explored: the token
ring spread across silos versus pinned to one.

Run:  python examples/multiserver_deployment.py
"""

import random

from repro.actors.runtime import SiloConfig
from repro.core.config import SnapperConfig
from repro.experiments.common import SMALLBANK_FAMILIES
from repro.experiments.tables import format_table
from repro.workloads.distributions import make_distribution
from repro.workloads.runner import EngineRunner, run_epochs
from repro.workloads.smallbank import SmallBankWorkload


def run_one(num_silos, placement="spread"):
    config = SnapperConfig()
    config.coordinator_placement = placement
    runner = EngineRunner(
        "pact", SMALLBANK_FAMILIES, seed=1,
        silo=SiloConfig(cores=4, num_silos=num_silos, seed=1),
        snapper_config=config,
    )
    dist = make_distribution("uniform", 2000 * num_silos, runner.loop.rng)
    workload = SmallBankWorkload(dist, txn_size=4, rng=random.Random(7))
    result = run_epochs(
        runner, workload.next_txn,
        num_clients=1, pipeline_size=64 * num_silos,
        epochs=3, epoch_duration=0.3, warmup_epochs=1,
    )
    metrics = result.metrics
    return {
        "silos": num_silos,
        "placement": placement,
        "tps": metrics.throughput,
        "p50_ms": metrics.latency_percentiles((50,))[50] * 1000,
        "cross_share": result.stats["cross_silo_messages"]
        / max(result.stats["messages_sent"], 1),
    }


def main() -> None:
    rows = []
    for num_silos in (1, 2, 4):
        print(f"running PACT on {num_silos} silo(s) ...")
        rows.append(run_one(num_silos))
    print("running PACT on 4 silos with the ring pinned to silo 0 ...")
    rows.append(run_one(4, placement=0))

    print()
    print(format_table(
        ["silos", "coordinator ring", "tps", "p50 ms", "cross-silo msgs"],
        [[r["silos"], r["placement"], r["tps"], f"{r['p50_ms']:.2f}",
          f"{r['cross_share']:.1%}"] for r in rows],
    ))
    print(
        "\nThroughput scales with silos (more cores), but multi-silo "
        "transactions pay cross-silo\nmessaging, and coordinator "
        "placement changes both the token circulation latency and\n"
        "the share of cross-silo traffic — the trade-offs §7 defers to "
        "future work."
    )


if __name__ == "__main__":
    main()
