"""Multi-server deployment (the paper's §7 future work, implemented).

Two parts:

1. the same SmallBank workload on 1, 2, and 4 silos, comparing the two
   coordinator-placement policies §7 says must be explored — the token
   ring spread across silos versus pinned to one;
2. the same multi-silo deployment on both *runtime backends*
   (docs/runtime.md): the deterministic DES ``SimBackend`` and the
   ``AsyncioBackend``, which runs every silo on real asyncio tasks and
   ships cross-silo envelopes over sockets.  Both substrates must
   commit identical balances — the differential contract that
   ``tests/test_runtime_differential.py`` enforces.

Run:  python examples/multiserver_deployment.py [--quick]

``--quick`` shrinks the placement sweep (CI smoke); the backend
comparison always runs at full (small) size.
"""

import random
import sys
import time

from repro.actors.runtime import SiloConfig
from repro.api import TxnRequest
from repro.core.config import SnapperConfig
from repro.core.system import SnapperSystem
from repro.experiments.common import SMALLBANK_FAMILIES
from repro.experiments.tables import format_table
from repro.workloads.distributions import make_distribution
from repro.workloads.runner import EngineRunner, run_epochs
from repro.workloads.smallbank import (
    ACCOUNT_KIND,
    SmallBankWorkload,
    SnapperAccountActor,
)


def run_one(num_silos, placement="spread", quick=False):
    config = SnapperConfig()
    config.coordinator_placement = placement
    runner = EngineRunner(
        "pact", SMALLBANK_FAMILIES, seed=1,
        silo=SiloConfig(cores=4, num_silos=num_silos, seed=1),
        snapper_config=config,
    )
    accounts = (500 if quick else 2000) * num_silos
    dist = make_distribution("uniform", accounts, runner.loop.rng)
    workload = SmallBankWorkload(dist, txn_size=4, rng=random.Random(7))
    result = run_epochs(
        runner, workload.next_txn,
        num_clients=1,
        pipeline_size=(16 if quick else 64) * num_silos,
        epochs=2 if quick else 3,
        epoch_duration=0.15 if quick else 0.3,
        warmup_epochs=1,
    )
    metrics = result.metrics
    return {
        "silos": num_silos,
        "placement": placement,
        "tps": metrics.throughput,
        "p50_ms": metrics.latency_percentiles((50,))[50] * 1000,
        "cross_share": result.stats["cross_silo_messages"]
        / max(result.stats["messages_sent"], 1),
    }


def run_backend(backend, num_silos=2, accounts=6, pacts=12):
    """The same 2-silo deployment, substrate chosen by one config knob.

    The transfers all commute (fixed amount both ways), so the
    committed balances are a pure function of the committed set — the
    property that makes cross-substrate equality exact rather than
    approximate (see src/repro/workloads/differential.py).
    """
    config = SnapperConfig(
        runtime_backend=backend,       # <- "sim" (default) or "asyncio"
        batch_complete_timeout=30.0,   # real seconds on the real substrate
    )
    system = SnapperSystem(
        config=config,
        silo=SiloConfig(cores=2, num_silos=num_silos, seed=1),
        seed=1,
    )
    system.register_actor(ACCOUNT_KIND, SnapperAccountActor)
    system.start()
    rng = random.Random(11)

    async def scenario():
        from repro.runtime.kernel import gather

        jobs = []
        for _ in range(pacts):
            keys = rng.sample(range(accounts), 3)
            handle = system.submit(TxnRequest.pact(
                ACCOUNT_KIND, keys[0], "multi_transfer",
                (1.0, keys[1:]), access={key: 1 for key in keys},
            ))
            jobs.append(handle.future)
        await gather(*jobs)
        return [
            await system.submit(
                TxnRequest.act(ACCOUNT_KIND, key, "balance")
            )
            for key in range(accounts)
        ]

    started = time.perf_counter()
    balances = system.run(scenario())
    wall_ms = (time.perf_counter() - started) * 1000
    system.shutdown()
    envelopes = getattr(system.backend, "transport_messages", None)
    system.backend.close()
    transport = (
        "in-process (virtual time)" if envelopes is None
        else f"{envelopes} socket envelope(s)"
    )
    print(
        f"  {backend:>7} backend: {pacts} PACTs on {num_silos} silos, "
        f"{wall_ms:7.1f} ms wall, {transport}"
    )
    return balances


def main() -> None:
    quick = "--quick" in sys.argv[1:]
    rows = []
    for num_silos in (1, 2) if quick else (1, 2, 4):
        print(f"running PACT on {num_silos} silo(s) ...")
        rows.append(run_one(num_silos, quick=quick))
    if not quick:
        print("running PACT on 4 silos with the ring pinned to silo 0 ...")
        rows.append(run_one(4, placement=0))

    print()
    print(format_table(
        ["silos", "coordinator ring", "tps", "p50 ms", "cross-silo msgs"],
        [[r["silos"], r["placement"], r["tps"], f"{r['p50_ms']:.2f}",
          f"{r['cross_share']:.1%}"] for r in rows],
    ))
    print(
        "\nThroughput scales with silos (more cores), but multi-silo "
        "transactions pay cross-silo\nmessaging, and coordinator "
        "placement changes both the token circulation latency and\n"
        "the share of cross-silo traffic — the trade-offs §7 defers to "
        "future work."
    )

    print("\nsame deployment, pluggable substrate (docs/runtime.md):")
    by_backend = {
        backend: run_backend(backend) for backend in ("sim", "asyncio")
    }
    if by_backend["sim"] == by_backend["asyncio"]:
        print("backends agree: identical committed balances on both")
    else:
        print("BACKENDS DIVERGED:", by_backend)
        raise SystemExit(1)


if __name__ == "__main__":
    main()
